(* System-level property tests:

   - the PMK's dispatch decisions agree with the scheduling table at every
     tick, for randomly synthesized valid tables;
   - the whole simulation is deterministic (equal seeds ⇒ identical traces);
   - occupancy reconstruction accounts for every tick;
   - the kernel's heir always satisfies eq. (14) under random operation
     sequences. *)

open Air_sim
open Air_model
open Air_pos
open Air
open Ident

let qcheck = QCheck_alcotest.to_alcotest
let pid = Partition_id.make

let requirements_gen =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* picks = list_repeat n (pair (int_range 0 2) (int_range 1 8)) in
    return
      (List.mapi
         (fun i (c, d) ->
           let cycle = [| 40; 80; 160 |].(c) in
           { Schedule.partition = pid i;
             cycle;
             duration = Stdlib.max 1 (Stdlib.min d (cycle / 5)) })
         picks))

(* At every tick the PMK's active partition equals the table's window owner
   at the corresponding MTF offset (Algorithm 1 + preemption table vs the
   declarative window list). *)
let pmk_matches_pst =
  QCheck.Test.make ~name:"PMK dispatch matches the PST at every tick"
    ~count:100 (QCheck.make requirements_gen) (fun requirements ->
      match Air_analysis.Synthesis.synthesize requirements with
      | Error _ -> QCheck.assume_fail ()
      | Ok schedule ->
        let pmk =
          Pmk.create ~partition_count:(List.length requirements) [ schedule ]
        in
        let ok = ref true in
        for _ = 0 to (3 * schedule.Schedule.mtf) - 1 do
          ignore (Pmk.tick pmk);
          let offset = Pmk.ticks pmk mod schedule.Schedule.mtf in
          let expected =
            Option.map
              (fun (w : Schedule.window) -> w.Schedule.partition)
              (Schedule.window_at schedule offset)
          in
          let actual = Pmk.active_partition pmk in
          let same =
            match (expected, actual) with
            | None, None -> true
            | Some a, Some b -> Partition_id.equal a b
            | None, Some _ | Some _, None -> false
          in
          if not same then ok := false
        done;
        !ok)

(* The same holds across a mode-based switch between two synthesized
   tables. *)
let pmk_matches_pst_after_switch =
  QCheck.Test.make ~name:"PMK matches the new PST after a switch" ~count:50
    (QCheck.make QCheck.Gen.(pair requirements_gen requirements_gen))
    (fun (reqs_a, reqs_b) ->
      (* Use the same partition universe for both tables. *)
      let partition_count =
        Stdlib.max (List.length reqs_a) (List.length reqs_b)
      in
      match
        ( Air_analysis.Synthesis.synthesize ~id:(Schedule_id.make 0) reqs_a,
          Air_analysis.Synthesis.synthesize ~id:(Schedule_id.make 1) reqs_b )
      with
      | Ok a, Ok b ->
        let pmk = Pmk.create ~partition_count [ a; b ] in
        ignore (Pmk.tick pmk);
        ignore (Pmk.request_schedule_switch pmk (Schedule_id.make 1));
        let ok = ref true in
        let switched = ref false in
        for _ = 1 to (3 * a.Schedule.mtf) + (3 * b.Schedule.mtf) do
          let o = Pmk.tick pmk in
          if o.Pmk.schedule_switched <> None then switched := true;
          let current =
            if Schedule_id.equal (Pmk.current_schedule pmk) a.Schedule.id
            then a
            else b
          in
          let offset =
            (Pmk.ticks pmk - Pmk.last_schedule_switch pmk)
            mod current.Schedule.mtf
          in
          let expected =
            Option.map
              (fun (w : Schedule.window) -> w.Schedule.partition)
              (Schedule.window_at current offset)
          in
          let same =
            match (expected, Pmk.active_partition pmk) with
            | None, None -> true
            | Some x, Some y -> Partition_id.equal x y
            | None, Some _ | Some _, None -> false
          in
          if not same then ok := false
        done;
        !ok && !switched
      | _, _ -> QCheck.assume_fail ())

(* Bit-level determinism of the full system. *)
let system_deterministic =
  QCheck.Test.make ~name:"full system is deterministic" ~count:10
    QCheck.(int_range 1 5)
    (fun mtfs ->
      let run () =
        let s = Air_workload.Satellite.make () in
        System.run_mtfs s 1;
        Air_workload.Satellite.inject_fault s;
        System.run_mtfs s mtfs;
        String.concat "\n"
          (List.map
             (fun (t, ev) -> Format.asprintf "%d %a" t Event.pp ev)
             (Trace.to_list (System.trace s)))
      in
      String.equal (run ()) (run ()))

(* Occupancy reconstruction conserves time. *)
let occupancy_conserves_time =
  QCheck.Test.make ~name:"occupancy sums to the horizon" ~count:50
    QCheck.(pair (int_range 1 2599) (int_range 1 1300))
    (fun (from, len) ->
      let s = Air_workload.Satellite.make () in
      System.run s ~ticks:(from + len + 1) ;
      let occ =
        Air_vitral.Gantt.occupancy
          ~partitions:(System.partition_ids s)
          ~from ~until:(from + len) (System.activity s)
      in
      List.fold_left (fun acc (_, n) -> acc + n) 0 occ = len)

(* Kernel heir invariant under random operations (eq. (14)): after a
   schedule step, the running process is schedulable and minimal by
   (priority, antiquity) among Ready_m(t). *)
type kop =
  | Start of int
  | Stop of int
  | Wait of int * int
  | Prio of int * int
  | Advance of int

let kop_gen =
  QCheck.Gen.(
    frequency
      [ (4, map (fun q -> Start q) (int_range 0 4));
        (2, map (fun q -> Stop q) (int_range 0 4));
        (2, map2 (fun q d -> Wait (q, d)) (int_range 0 4) (int_range 1 20));
        (2, map2 (fun q p -> Prio (q, p)) (int_range 0 4) (int_range 0 9));
        (3, map (fun d -> Advance d) (int_range 1 10)) ])

let heir_respects_eq14 =
  QCheck.Test.make ~name:"kernel heir satisfies eq. (14)" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) kop_gen))
    (fun ops ->
      let k =
        Kernel.create ~partition:(pid 0) ~policy:Kernel.Priority_preemptive
          ~hooks:Kernel.null_hooks
          (Array.init 5 (fun i ->
               Process.spec ~base_priority:(5 + (i mod 3))
                 (Printf.sprintf "t%d" i)))
      in
      let now = ref 0 in
      List.for_all
        (fun op ->
          (match op with
          | Start q -> ignore (Kernel.start k ~now:!now q)
          | Stop q -> ignore (Kernel.stop k q)
          | Wait (q, d) -> ignore (Kernel.timed_wait k ~now:!now q d)
          | Prio (q, p) -> ignore (Kernel.set_priority k q p)
          | Advance d ->
            now := !now + d;
            Kernel.announce_ticks k ~now:!now);
          let heir = Kernel.schedule k ~now:!now in
          let ready = Kernel.ready_set k in
          match heir with
          | None -> ready = []
          | Some h ->
            List.mem h ready
            && Process.state_equal (Kernel.state k h) Process.Running
            && List.for_all
                 (fun q ->
                   (Kernel.status k h).Process.current_priority
                   <= (Kernel.status k q).Process.current_priority)
                 ready
            (* Exactly one running process (eq. (13)). *)
            && List.length
                 (List.filter
                    (fun q ->
                      Process.state_equal (Kernel.state k q) Process.Running)
                    ready)
               = 1)
        ops)

(* Supply-function laws over randomly synthesized schedules. *)
let supply_laws =
  QCheck.Test.make ~name:"supply: sbf is a lower bound and inverse is exact"
    ~count:60
    (QCheck.make QCheck.Gen.(pair requirements_gen (int_range 1 300)))
    (fun (requirements, delta) ->
      match Air_analysis.Synthesis.synthesize requirements with
      | Error _ -> QCheck.assume_fail ()
      | Ok schedule ->
        List.for_all
          (fun (r : Schedule.requirement) ->
            let p = r.Schedule.partition in
            let sbf = Air_analysis.Supply.sbf schedule p delta in
            (* Lower bound over a sample of alignments. *)
            let bound_ok =
              List.for_all
                (fun from ->
                  Air_analysis.Supply.service_in schedule p ~from
                    ~until:(from + delta)
                  >= sbf)
                [ 0; 1; 7; delta; (2 * delta) + 3 ]
            in
            (* inverse_sbf is the minimal interval that guarantees the
               demand. *)
            let inverse_ok =
              match Air_analysis.Supply.inverse_sbf schedule p sbf with
              | None -> sbf = 0
              | Some d ->
                Air_analysis.Supply.sbf schedule p d >= sbf
                && (d = 0 || Air_analysis.Supply.sbf schedule p (d - 1) < sbf)
            in
            bound_ok && inverse_ok)
          requirements)

let suite =
  [ qcheck pmk_matches_pst;
    qcheck pmk_matches_pst_after_switch;
    qcheck system_deterministic;
    qcheck occupancy_conserves_time;
    qcheck heir_respects_eq14;
    qcheck supply_laws ]
