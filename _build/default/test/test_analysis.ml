(* Tests for the schedulability analysis substrate: supply functions,
   response-time analysis, PST synthesis and the single-level baseline. *)

open Air_model
open Air_analysis

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let pid = Ident.Partition_id.make
let sid = Ident.Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

let fig8 = Air_workload.Satellite.schedule_1
let p1 = Air_workload.Satellite.p1
let p2 = Air_workload.Satellite.p2

(* --- Supply -------------------------------------------------------------- *)

let service_in_exact () =
  (* P1 owns [0,200) of each 1300-tick MTF. *)
  check Alcotest.int "inside window" 50 (Supply.service_in fig8 p1 ~from:0 ~until:50);
  check Alcotest.int "across window end" 200
    (Supply.service_in fig8 p1 ~from:0 ~until:1000);
  check Alcotest.int "whole MTF" 200
    (Supply.service_in fig8 p1 ~from:0 ~until:1300);
  check Alcotest.int "two MTFs" 400
    (Supply.service_in fig8 p1 ~from:0 ~until:2600);
  check Alcotest.int "straddling frames" 250
    (Supply.service_in fig8 p1 ~from:150 ~until:1500);
  check Alcotest.int "empty interval" 0
    (Supply.service_in fig8 p1 ~from:500 ~until:500)

let service_in_matches_bruteforce () =
  (* Cross-check the closed form against a tick-by-tick walk. *)
  let brute pid from until =
    let count = ref 0 in
    for t = from to until - 1 do
      match Schedule.window_at fig8 t with
      | Some win when Ident.Partition_id.equal win.Schedule.partition pid ->
        incr count
      | _ -> ()
    done;
    !count
  in
  List.iter
    (fun (from, until) ->
      List.iter
        (fun p ->
          check Alcotest.int
            (Printf.sprintf "[%d,%d)" from until)
            (brute p from until)
            (Supply.service_in fig8 p ~from ~until))
        [ p1; p2 ])
    [ (0, 137); (93, 1407); (1250, 3000); (777, 779) ]

let sbf_worst_alignment () =
  (* Worst case for P1 over 1300 ticks: an interval starting right after
     its window gets exactly one window (200). *)
  check Alcotest.int "delta = MTF" 200 (Supply.sbf fig8 p1 1300);
  (* Just under one blackout of 1100: possibly zero service. *)
  check Alcotest.int "short interval" 0 (Supply.sbf fig8 p1 1100);
  check Alcotest.int "zero" 0 (Supply.sbf fig8 p1 0);
  (* Monotonicity sample. *)
  let prev = ref 0 in
  for d = 0 to 2600 do
    let v = Supply.sbf fig8 p1 d in
    if v < !prev then Alcotest.failf "sbf not monotone at %d" d;
    prev := v
  done

let inverse_sbf_consistent () =
  (match Supply.inverse_sbf fig8 p1 200 with
  | Some d ->
    check Alcotest.bool "sbf at d covers c" true (Supply.sbf fig8 p1 d >= 200);
    check Alcotest.bool "minimal" true (Supply.sbf fig8 p1 (d - 1) < 200)
  | None -> Alcotest.fail "P1 accumulates 200");
  check (Alcotest.option Alcotest.int) "zero demand" (Some 0)
    (Supply.inverse_sbf fig8 p1 0);
  (* A partition with no windows never accumulates service. *)
  let empty =
    Schedule.make ~id:(sid 0) ~name:"none" ~mtf:100
      ~requirements:[ q (pid 0) 100 0 ] []
  in
  check (Alcotest.option Alcotest.int) "no windows" None
    (Supply.inverse_sbf empty (pid 0) 1)

let blackout_lengths () =
  check Alcotest.int "P1 blackout" 1100 (Supply.longest_blackout fig8 p1);
  (* P2 windows at [200,300) and [1000,1100): gaps 700 and wrap 400. *)
  check Alcotest.int "P2 blackout" 700 (Supply.longest_blackout fig8 p2)

(* --- RTA ------------------------------------------------------------------ *)

let rta_prototype_schedulable () =
  (* Without the faulty process, every prototype task set is schedulable
     under its windows. *)
  let aocs_ok =
    Rta.analyze fig8 p1
      [| Process.spec ~periodicity:(Process.Periodic 1300)
           ~time_capacity:1300 ~wcet:70 ~base_priority:5 "attitude" |]
  in
  List.iter
    (fun v -> check Alcotest.bool "schedulable" true v.Rta.schedulable)
    aocs_ok

let rta_detects_overload () =
  (* The faulty process's 150-tick demand against 140 available per MTF and
     a 300-tick capacity is unschedulable. *)
  let specs =
    [| Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:1300
         ~wcet:70 ~base_priority:5 "attitude";
       Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:300
         ~wcet:150 ~base_priority:20 "faulty" |]
  in
  match Rta.analyze fig8 p1 specs with
  | [ att; faulty ] ->
    check Alcotest.bool "attitude fine" true att.Rta.schedulable;
    check Alcotest.bool "faulty not" false faulty.Rta.schedulable
  | _ -> Alcotest.fail "two verdicts expected"

let rta_interference_ordering () =
  (* Higher-priority interference delays the lower process. *)
  let s =
    Schedule.make ~id:(sid 0) ~name:"full" ~mtf:100
      ~requirements:[ q (pid 0) 100 100 ]
      [ w (pid 0) 0 100 ]
  in
  let specs =
    [| Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
         ~wcet:20 ~base_priority:1 "hi";
       Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
         ~wcet:30 ~base_priority:9 "lo" |]
  in
  match Rta.analyze s (pid 0) specs with
  | [ hi; lo ] ->
    check (Alcotest.option Alcotest.int) "hi response" (Some 20)
      hi.Rta.response_time;
    (* lo: 30 own + one 20-tick hi job → completes exactly at 50, just as
       the second hi job releases. *)
    check (Alcotest.option Alcotest.int) "lo response" (Some 50)
      lo.Rta.response_time
  | _ -> Alcotest.fail "two verdicts expected"

let rta_verdict_agrees_with_simulation () =
  (* Ground truth: simulate the prototype AOCS partition (with fault) and
     confirm the RTA unschedulable verdict corresponds to real misses. *)
  let s = Air_workload.Satellite.make () in
  Air_workload.Satellite.inject_fault s;
  Air.System.run_mtfs s 4;
  check Alcotest.bool "simulation misses" true
    (List.length (Air.System.violations s) > 0)

let breakdown_utilization_sane () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"full" ~mtf:100
      ~requirements:[ q (pid 0) 100 100 ]
      [ w (pid 0) 0 100 ]
  in
  let specs =
    [| Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
         ~wcet:20 ~base_priority:1 "t" |]
  in
  let factor = Rta.breakdown_utilization s (pid 0) specs in
  (* 20-tick task with a full processor: breaks down around 5×. *)
  check Alcotest.bool "at least 4x" true (factor >= 4.0);
  check Alcotest.bool "at most 6x" true (factor <= 6.0)

(* --- Synthesis ------------------------------------------------------------ *)

let synthesize_simple () =
  match
    Synthesis.synthesize
      [ q (pid 0) 50 20; q (pid 1) 100 30; q (pid 2) 100 10 ]
  with
  | Error f -> Alcotest.failf "synthesis failed: %a" Synthesis.pp_failure f
  | Ok s ->
    check Alcotest.int "mtf is lcm" 100 s.Schedule.mtf;
    check Alcotest.int "valid" 0 (List.length (Validate.validate s))

let synthesize_paper_requirements () =
  match Synthesis.synthesize Air_workload.Satellite.schedule_1.Schedule.requirements with
  | Error f -> Alcotest.failf "synthesis failed: %a" Synthesis.pp_failure f
  | Ok s ->
    check Alcotest.int "mtf" 1300 s.Schedule.mtf;
    check Alcotest.int "valid" 0 (List.length (Validate.validate s))

let synthesize_rejects_overcommitment () =
  match Synthesis.synthesize [ q (pid 0) 10 8; q (pid 1) 10 8 ] with
  | Error (Synthesis.Overcommitted _) -> ()
  | _ -> Alcotest.fail "expected Overcommitted"

let synthesize_harmonic_guard () =
  (match Synthesis.synthesize_harmonic [ q (pid 0) 30 5; q (pid 1) 50 5 ] with
  | Error (Synthesis.Bad_requirement _) -> ()
  | _ -> Alcotest.fail "expected non-harmonic rejection");
  match Synthesis.synthesize_harmonic [ q (pid 0) 50 5; q (pid 1) 100 5 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "harmonic failed: %a" Synthesis.pp_failure f

let synthesized_full_utilization () =
  (* Exactly filling the processor still works. *)
  match Synthesis.synthesize [ q (pid 0) 10 5; q (pid 1) 10 5 ] with
  | Ok s ->
    check (Alcotest.float 1e-9) "utilization 1" 1.0 (Schedule.utilization s)
  | Error f -> Alcotest.failf "failed: %a" Synthesis.pp_failure f

(* --- Single-level baseline ------------------------------------------------ *)

let single_level_meets_when_feasible () =
  let tasks =
    [ Single_level.task ~owner:(pid 0)
        (Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
           ~wcet:30 ~base_priority:1 "a");
      Single_level.task ~owner:(pid 1)
        (Process.spec ~periodicity:(Process.Periodic 200) ~time_capacity:200
           ~wcet:60 ~base_priority:5 "b") ]
  in
  let stats = Single_level.simulate tasks ~horizon:2000 in
  check Alcotest.int "no misses" 0 stats.Single_level.total_misses;
  check Alcotest.int "no starvation" 0 stats.Single_level.starved_tasks

let single_level_babbler_starves_everyone () =
  let tasks =
    [ Single_level.task ~owner:(pid 0) ~babbling:true
        (Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
           ~wcet:10 ~base_priority:0 "babbler");
      Single_level.task ~owner:(pid 1)
        (Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
           ~wcet:10 ~base_priority:5 "victim") ]
  in
  let stats = Single_level.simulate tasks ~horizon:2000 in
  (* No containment: faults propagate across application boundaries. *)
  check Alcotest.bool "victim misses" true
    (Single_level.misses_outside stats (pid 0) > 0);
  check Alcotest.bool "victim starved" true (stats.Single_level.starved_tasks >= 1)

let qcheck_single_level_counts_consistent =
  QCheck.Test.make ~name:"single-level: completions never exceed releases"
    QCheck.(pair int (int_range 1 5))
    (fun (seed, n) ->
      let rng = Air_sim.Rng.create seed in
      let tasks =
        List.init n (fun i ->
            let period = Air_sim.Rng.pick rng [| 50; 100; 200 |] in
            let wcet = 1 + Air_sim.Rng.int rng (period / 4) in
            Single_level.task ~owner:(pid i)
              (Process.spec
                 ~periodicity:(Process.Periodic period)
                 ~time_capacity:period ~wcet
                 ~base_priority:period
                 (Printf.sprintf "t%d" i)))
      in
      let stats = Single_level.simulate tasks ~horizon:2000 in
      List.for_all
        (fun t ->
          t.Single_level.completions <= t.Single_level.releases
          && t.Single_level.deadline_misses <= t.Single_level.releases)
        stats.Single_level.per_task)

(* --- Integration report ---------------------------------------------------- *)

let report_on_prototype () =
  let partitions =
    List.map
      (fun (s : Air.System.partition_setup) -> s.Air.System.partition)
      (Air_workload.Satellite.config ()).Air.System.partitions
  in
  let report =
    Report.build partitions
      [ Air_workload.Satellite.schedule_1; Air_workload.Satellite.schedule_2 ]
  in
  check Alcotest.bool "tables valid" true report.Report.all_valid;
  (* The faulty process is unschedulable by construction (150 demand vs 140
     supply), so the overall verdict is "not all schedulable". *)
  check Alcotest.bool "faulty flagged" false report.Report.all_schedulable;
  check Alcotest.int "two schedule reports" 2
    (List.length report.Report.schedules);
  let rendered = Format.asprintf "%a" Report.pp report in
  check Alcotest.bool "mentions blackout" true
    (Astring_contains.contains rendered "blackout");
  check Alcotest.bool "mentions verdict" true
    (Astring_contains.contains rendered "NOT all schedulable")

let report_flags_invalid_tables () =
  let p0 = pid 0 in
  let bad =
    Schedule.make ~id:(sid 0) ~name:"bad" ~mtf:130
      ~requirements:[ q p0 100 10 ]
      [ w p0 0 10 ]
  in
  let partition = Partition.make ~id:p0 ~name:"X" [ Process.spec "a" ] in
  let report = Report.build [ partition ] [ bad ] in
  check Alcotest.bool "invalid" false report.Report.all_valid;
  check Alcotest.bool "not schedulable either" false
    report.Report.all_schedulable

let suite =
  [ Alcotest.test_case "supply: exact service" `Quick service_in_exact;
    Alcotest.test_case "supply: matches brute force" `Quick
      service_in_matches_bruteforce;
    Alcotest.test_case "supply: sbf worst alignment" `Quick sbf_worst_alignment;
    Alcotest.test_case "supply: inverse consistent" `Quick
      inverse_sbf_consistent;
    Alcotest.test_case "supply: blackout lengths" `Quick blackout_lengths;
    Alcotest.test_case "rta: prototype schedulable" `Quick
      rta_prototype_schedulable;
    Alcotest.test_case "rta: detects overload" `Quick rta_detects_overload;
    Alcotest.test_case "rta: interference ordering" `Quick
      rta_interference_ordering;
    Alcotest.test_case "rta: verdict agrees with simulation" `Quick
      rta_verdict_agrees_with_simulation;
    Alcotest.test_case "rta: breakdown utilization" `Quick
      breakdown_utilization_sane;
    Alcotest.test_case "synthesis: simple" `Quick synthesize_simple;
    Alcotest.test_case "synthesis: paper requirements" `Quick
      synthesize_paper_requirements;
    Alcotest.test_case "synthesis: rejects overcommitment" `Quick
      synthesize_rejects_overcommitment;
    Alcotest.test_case "synthesis: harmonic guard" `Quick
      synthesize_harmonic_guard;
    Alcotest.test_case "synthesis: full utilization" `Quick
      synthesized_full_utilization;
    Alcotest.test_case "single-level: feasible set meets deadlines" `Quick
      single_level_meets_when_feasible;
    Alcotest.test_case "single-level: babbler starves everyone" `Quick
      single_level_babbler_starves_everyone;
    qcheck qcheck_single_level_counts_consistent;
    Alcotest.test_case "report: prototype" `Quick report_on_prototype;
    Alcotest.test_case "report: flags invalid tables" `Quick
      report_flags_invalid_tables ]
