(* Tests for spatial partitioning: descriptors, the three-level MMU, the
   TLB and the protection unit. *)

open Air_model
open Air_spatial

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let pid = Ident.Partition_id.make
let page = Memory.page_size

let region_constructors () =
  let r = Memory.region ~base:0 ~size:page Memory.Code in
  check Alcotest.bool "code defaults rx" true
    (r.Memory.perms.Memory.read && r.Memory.perms.Memory.execute
     && not r.Memory.perms.Memory.write);
  Alcotest.check_raises "misaligned base"
    (Invalid_argument "Memory.region: base not page aligned") (fun () ->
      ignore (Memory.region ~base:100 ~size:page Memory.Data));
  Alcotest.check_raises "bad size"
    (Invalid_argument "Memory.region: size not a page multiple") (fun () ->
      ignore (Memory.region ~base:0 ~size:100 Memory.Data))

let overlap_detection () =
  let a = Memory.region ~base:0 ~size:(2 * page) Memory.Data in
  let b = Memory.region ~base:page ~size:page Memory.Data in
  let c = Memory.region ~base:(2 * page) ~size:page Memory.Data in
  check Alcotest.bool "overlapping" true (Memory.regions_overlap a b);
  check Alcotest.bool "adjacent not overlapping" false
    (Memory.regions_overlap a c)

let validate_maps_cross_partition () =
  let shared = Memory.region ~base:0 ~size:page Memory.Data in
  let m1 = Memory.map (pid 0) [ shared ] in
  let m2 = Memory.map (pid 1) [ shared ] in
  check Alcotest.bool "breach reported" true
    (Memory.validate_maps [ m1; m2 ] <> [])

let allocator_disjoint () =
  let maps =
    Memory.allocate
      [ (pid 0,
         [ { Memory.req_section = Memory.Code; req_size = 5000 };
           { Memory.req_section = Memory.Data; req_size = 100 } ]);
        (pid 1, [ { Memory.req_section = Memory.Stack; req_size = 8192 } ]) ]
  in
  check Alcotest.int "no diagnostics" 0
    (List.length (Memory.validate_maps maps));
  List.iter
    (fun (m : Memory.map) ->
      List.iter
        (fun (r : Memory.region) ->
          check Alcotest.int "page aligned" 0 (r.Memory.base mod page);
          check Alcotest.int "page multiple" 0 (r.Memory.size mod page))
        m.Memory.regions)
    maps

let mmu_mapping_levels () =
  let mmu = Mmu.create () in
  (* 16 MiB + 256 KiB + 4 KiB region starting 16 MiB-aligned uses one entry
     per level. *)
  let base = 0x4000_0000 in
  let size = 0x100_0000 + 0x4_0000 + 0x1000 in
  Mmu.map_region mmu ~context:1
    (Memory.region ~base ~size Memory.Data);
  check Alcotest.int "three entries" 3 (Mmu.entry_count mmu ~context:1);
  (* A poorly aligned small region decomposes into 4 KiB pages. *)
  Mmu.map_region mmu ~context:2
    (Memory.region ~base:0x1000 ~size:(4 * page) Memory.Data);
  check Alcotest.int "four pages" 4 (Mmu.entry_count mmu ~context:2)

let mmu_translate_and_faults () =
  let mmu = Mmu.create () in
  Mmu.map_region mmu ~context:1
    (Memory.region ~base:0x10000 ~size:page Memory.Data);
  Mmu.map_region mmu ~context:1
    (Memory.region ~base:0x20000 ~size:page ~min_level:Memory.Pos Memory.Data);
  let ok =
    Mmu.translate mmu ~context:1 ~level:Memory.Application ~access:Mmu.Read
      0x10010
  in
  check Alcotest.bool "granted" true (Result.is_ok ok);
  (match
     Mmu.translate mmu ~context:1 ~level:Memory.Application ~access:Mmu.Execute
       0x10010
   with
  | Error { Mmu.reason = Mmu.Permission; _ } -> ()
  | _ -> Alcotest.fail "expected permission fault");
  (match
     Mmu.translate mmu ~context:1 ~level:Memory.Application ~access:Mmu.Read
       0x20000
   with
  | Error { Mmu.reason = Mmu.Privilege; _ } -> ()
  | _ -> Alcotest.fail "expected privilege fault");
  (match
     Mmu.translate mmu ~context:1 ~level:Memory.Pos ~access:Mmu.Read 0x20000
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "POS level should pass");
  (match
     Mmu.translate mmu ~context:1 ~level:Memory.Application ~access:Mmu.Read
       0x9000_0000
   with
  | Error { Mmu.reason = Mmu.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "expected unmapped fault");
  (* Context isolation: the same address is unmapped in context 2. *)
  (match
     Mmu.translate mmu ~context:2 ~level:Memory.Application ~access:Mmu.Read
       0x10010
   with
  | Error { Mmu.reason = Mmu.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "expected isolation")

let mmu_double_map_rejected () =
  let mmu = Mmu.create () in
  Mmu.map_region mmu ~context:1 (Memory.region ~base:0 ~size:page Memory.Data);
  Alcotest.check_raises "remap"
    (Invalid_argument "Mmu.map_region: page already mapped") (fun () ->
      Mmu.map_region mmu ~context:1
        (Memory.region ~base:0 ~size:page Memory.Code))

let acc_encoding_values () =
  check Alcotest.int "user rw" 1 (Mmu.acc_encoding Memory.rw Memory.Application);
  check Alcotest.int "user rx" 2 (Mmu.acc_encoding Memory.rx Memory.Application);
  check Alcotest.int "user rwx" 3
    (Mmu.acc_encoding Memory.rwx Memory.Application);
  check Alcotest.int "supervisor rw" 7 (Mmu.acc_encoding Memory.rw Memory.Pos);
  check Alcotest.int "supervisor ro" 6 (Mmu.acc_encoding Memory.ro Memory.Pmk)

let tlb_hits_and_replacement () =
  let tlb = Tlb.create ~capacity:2 () in
  let entry context vpn =
    { Tlb.context; vpn; perms = Memory.rw; min_level = Memory.Application }
  in
  check Alcotest.bool "miss" true (Tlb.lookup tlb ~context:1 ~vpn:1 = None);
  Tlb.insert tlb (entry 1 1);
  check Alcotest.bool "hit" true (Tlb.lookup tlb ~context:1 ~vpn:1 <> None);
  Tlb.insert tlb (entry 1 2);
  Tlb.insert tlb (entry 1 3);
  (* capacity 2: vpn 1 was evicted FIFO *)
  check Alcotest.bool "evicted" true (Tlb.lookup tlb ~context:1 ~vpn:1 = None);
  let stats = Tlb.stats tlb in
  check Alcotest.int "hits" 1 stats.Tlb.hits;
  check Alcotest.int "misses" 2 stats.Tlb.misses

let tlb_context_flush () =
  let tlb = Tlb.create ~capacity:8 () in
  Tlb.insert tlb
    { Tlb.context = 1; vpn = 1; perms = Memory.rw; min_level = Memory.Application };
  Tlb.insert tlb
    { Tlb.context = 2; vpn = 1; perms = Memory.rw; min_level = Memory.Application };
  Tlb.flush_context tlb ~context:1;
  check Alcotest.bool "ctx1 gone" true (Tlb.lookup tlb ~context:1 ~vpn:1 = None);
  check Alcotest.bool "ctx2 kept" true (Tlb.lookup tlb ~context:2 ~vpn:1 <> None)

let protection_end_to_end () =
  let maps =
    Memory.allocate
      [ (pid 0, [ { Memory.req_section = Memory.Data; req_size = 4096 } ]);
        (pid 1, [ { Memory.req_section = Memory.Data; req_size = 4096 } ]) ]
  in
  let prot = Protection.create maps in
  let region_of p =
    match Protection.map_of prot p with
    | Some { Memory.regions = r :: _; _ } -> r
    | _ -> Alcotest.fail "missing map"
  in
  let r0 = region_of (pid 0) and r1 = region_of (pid 1) in
  check Alcotest.bool "own access ok" true
    (Result.is_ok
       (Protection.access prot ~partition:(pid 0) ~level:Memory.Application
          ~access:Mmu.Read r0.Memory.base));
  check Alcotest.bool "cross access denied" true
    (Result.is_error
       (Protection.access prot ~partition:(pid 0) ~level:Memory.Application
          ~access:Mmu.Read r1.Memory.base));
  (* Second identical access must be served by the TLB. *)
  let before = (Protection.tlb_stats prot).Tlb.hits in
  ignore
    (Protection.access prot ~partition:(pid 0) ~level:Memory.Application
       ~access:Mmu.Read r0.Memory.base);
  check Alcotest.int "tlb hit" (before + 1) (Protection.tlb_stats prot).Tlb.hits

let protection_rejects_overlaps () =
  let shared = Memory.region ~base:0 ~size:page Memory.Data in
  let maps = [ Memory.map (pid 0) [ shared ]; Memory.map (pid 1) [ shared ] ] in
  check Alcotest.bool "raises" true
    (try
       ignore (Protection.create maps);
       false
     with Invalid_argument _ -> true)

(* TLB-cached decisions always agree with a fresh page-table walk. *)
let qcheck_tlb_walk_agree =
  QCheck.Test.make ~name:"protection with TLB agrees with raw MMU walk"
    QCheck.(pair (int_range 0 1) (int_range 0 0x40_0000))
    (fun (p, offset) ->
      let maps =
        Memory.allocate
          [ (pid 0, [ { Memory.req_section = Memory.Data; req_size = 65536 } ]);
            (pid 1, [ { Memory.req_section = Memory.Code; req_size = 65536 } ]) ]
      in
      let prot = Protection.create maps in
      let addr = 0x4000_0000 + offset in
      let via_protection =
        Result.is_ok
          (Protection.access prot ~partition:(pid p)
             ~level:Memory.Application ~access:Mmu.Read addr)
      in
      (* Ask twice: the second answer is TLB-served and must agree. *)
      let again =
        Result.is_ok
          (Protection.access prot ~partition:(pid p)
             ~level:Memory.Application ~access:Mmu.Read addr)
      in
      let raw =
        Result.is_ok
          (Mmu.translate (Protection.mmu prot) ~context:(p + 1)
             ~level:Memory.Application ~access:Mmu.Read addr)
      in
      via_protection = raw && again = raw)

let suite =
  [ Alcotest.test_case "region constructors" `Quick region_constructors;
    Alcotest.test_case "overlap detection" `Quick overlap_detection;
    Alcotest.test_case "cross-partition overlap reported" `Quick
      validate_maps_cross_partition;
    Alcotest.test_case "allocator produces disjoint aligned maps" `Quick
      allocator_disjoint;
    Alcotest.test_case "mmu: large regions use large entries" `Quick
      mmu_mapping_levels;
    Alcotest.test_case "mmu: translate and faults" `Quick
      mmu_translate_and_faults;
    Alcotest.test_case "mmu: double map rejected" `Quick mmu_double_map_rejected;
    Alcotest.test_case "mmu: SPARC ACC encoding" `Quick acc_encoding_values;
    Alcotest.test_case "tlb: hits and FIFO replacement" `Quick
      tlb_hits_and_replacement;
    Alcotest.test_case "tlb: per-context flush" `Quick tlb_context_flush;
    Alcotest.test_case "protection: end to end" `Quick protection_end_to_end;
    Alcotest.test_case "protection: rejects overlapping maps" `Quick
      protection_rejects_overlaps;
    qcheck qcheck_tlb_walk_agree ]
