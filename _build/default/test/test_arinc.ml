(* Tests for the ARINC 653 fidelity features added on top of the paper's
   core: preemption locking, application error handlers, intrapartition
   objects created at initialization, and the warm/cold restart context
   distinction. *)

open Air_sim
open Air_model
open Air_pos
open Air
open Ident

let check = Alcotest.check
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* --- Preemption locking (kernel level) ------------------------------------ *)

let klock_fixture () =
  let k =
    Kernel.create ~partition:(pid 0) ~policy:Kernel.Priority_preemptive
      ~hooks:Kernel.null_hooks
      [| Process.spec ~base_priority:9 "low";
         Process.spec ~base_priority:1 "high" |]
  in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.schedule k ~now:0);
  k

let lock_prevents_preemption () =
  let k = klock_fixture () in
  (match Kernel.lock_preemption k ~process:0 with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "lock should succeed at level 1");
  ignore (Kernel.start k ~now:1 1);
  (* The higher-priority process does not preempt while locked. *)
  check (Alcotest.option Alcotest.int) "low keeps running" (Some 0)
    (Kernel.schedule k ~now:1);
  (match Kernel.unlock_preemption k ~process:0 with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "unlock should reach level 0");
  check (Alcotest.option Alcotest.int) "high takes over" (Some 1)
    (Kernel.schedule k ~now:2)

let lock_nests () =
  let k = klock_fixture () in
  ignore (Kernel.lock_preemption k ~process:0);
  (match Kernel.lock_preemption k ~process:0 with
  | Ok 2 -> ()
  | _ -> Alcotest.fail "nested lock at level 2");
  ignore (Kernel.start k ~now:1 1);
  ignore (Kernel.unlock_preemption k ~process:0);
  check (Alcotest.option Alcotest.int) "still locked" (Some 0)
    (Kernel.schedule k ~now:1);
  ignore (Kernel.unlock_preemption k ~process:0);
  check (Alcotest.option Alcotest.int) "released" (Some 1)
    (Kernel.schedule k ~now:2)

let lock_released_on_block () =
  let k = klock_fixture () in
  ignore (Kernel.lock_preemption k ~process:0);
  ignore (Kernel.start k ~now:1 1);
  (* Blocking while locked releases the lock (ARINC 653 forbids it). *)
  ignore (Kernel.timed_wait k ~now:1 0 50);
  check Alcotest.bool "lock gone" false (Kernel.preemption_locked k);
  check (Alcotest.option Alcotest.int) "high runs" (Some 1)
    (Kernel.schedule k ~now:1)

let lock_misuse_rejected () =
  let k = klock_fixture () in
  (* Only the running process may lock. *)
  (match Kernel.lock_preemption k ~process:1 with
  | Error Kernel.Not_waiting -> ()
  | _ -> Alcotest.fail "non-running lock should fail");
  match Kernel.unlock_preemption k ~process:0 with
  | Error Kernel.Not_waiting -> ()
  | _ -> Alcotest.fail "unlock without lock should fail"

let lock_through_scripts () =
  (* A low-priority process locks preemption around a critical section; a
     periodic high-priority process released mid-section must wait. *)
  let p =
    Partition.make ~id:(pid 0) ~name:"LOCKER"
      [ Process.spec ~base_priority:9 "background";
        Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
          ~wcet:5 ~base_priority:1 "urgent" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"all" ~mtf:50
      ~requirements:[ q (pid 0) 50 50 ]
      [ w (pid 0) 0 50 ]
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup p
               ~autostart:[ ("urgent", false) ]
               [ Script.make
                   [ Script.Compute 2; Script.Lock_preemption;
                     Script.Start_other "urgent"; Script.Compute 10;
                     Script.Log "critical section done";
                     Script.Unlock_preemption; Script.Timed_wait 1000 ];
                 Script.periodic_body
                   [ Script.Compute 5; Script.Log "urgent ran" ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:40;
  let t_of line =
    match
      Trace.find_first
        (function
          | Event.Application_output { line = l; _ } -> String.equal l line
          | _ -> false)
        (System.trace s)
    with
    | Some (t, _) -> t
    | None -> Alcotest.failf "missing output %S" line
  in
  (* The critical section completes before the urgent process runs, even
     though urgent has the higher priority. *)
  check Alcotest.bool "critical section first" true
    (t_of "critical section done" < t_of "urgent ran")

(* --- Error handler process -------------------------------------------------- *)

let error_handler_invoked () =
  let p =
    Partition.make ~id:(pid 0) ~name:"HANDLED"
      [ Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:30
          ~wcet:60 ~base_priority:5 "victim";
        Process.spec ~base_priority:0 "handler" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"all" ~mtf:100
      ~requirements:[ q (pid 0) 100 100 ]
      [ w (pid 0) 0 100 ]
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup p
               ~autostart:[ ("handler", false) ]
               ~error_handler:"handler"
               [ Script.periodic_body [ Script.Compute 60 ];
                 Script.make
                   [ Script.Compute 1; Script.Log "error handler invoked";
                     Script.Stop_self ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:300;
  (* The victim misses its 30-tick deadline; the handler runs (at highest
     priority) each time. *)
  check Alcotest.bool "violations" true
    (List.length (System.violations s) > 0);
  check Alcotest.bool "handler ran" true
    (Trace.count
       (function
         | Event.Application_output { line = "error handler invoked"; _ } ->
           true
         | _ -> false)
       (System.trace s)
    >= 1)

let error_handler_must_exist () =
  let p = Partition.make ~id:(pid 0) ~name:"X" [ Process.spec "a" ] in
  check Alcotest.bool "rejected" true
    (try
       ignore
         (System.partition_setup ~error_handler:"ghost" p [ Script.empty ]);
       false
     with Invalid_argument _ -> true)

(* --- Intra objects at initialization and across restarts -------------------- *)

let objects_fixture () =
  let p =
    Partition.make ~id:(pid 0) ~name:"OBJ"
      [ Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
          ~wcet:5 ~base_priority:5 "worker" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"all" ~mtf:50
      ~requirements:[ q (pid 0) 50 50 ]
      [ w (pid 0) 0 50 ]
  in
  System.create
    (System.config
       ~partitions:
         [ System.partition_setup p
             ~intra_objects:
               [ System.Semaphore_object
                   { name = "mutex"; initial = 1; maximum = 1;
                     discipline = Intra.Fifo };
                 System.Event_object { name = "go" };
                 System.Blackboard_object
                   { name = "status"; max_message_size = 32 };
                 System.Buffer_object
                   { name = "queue"; depth = 4; max_message_size = 32;
                     discipline = Intra.Priority } ]
             [ Script.periodic_body
                 [ Script.Compute 5;
                   Script.Display_blackboard ("status", "ok") ] ] ]
       ~schedules:[ schedule ] ())

let objects_created_at_init () =
  let s = objects_fixture () in
  System.run s ~ticks:60;
  let intra = System.intra_of s (pid 0) in
  check (Alcotest.option Alcotest.int) "semaphore" (Some 1)
    (Intra.semaphore_value intra ~name:"mutex");
  check (Alcotest.option Alcotest.bool) "event" (Some false)
    (Intra.event_is_up intra ~name:"go");
  check (Alcotest.option Alcotest.int) "buffer" (Some 0)
    (Intra.buffer_occupancy intra ~name:"queue");
  (* The script wrote the blackboard. *)
  match Intra.read_blackboard intra ~now:60 ~process:0 ~name:"status" ~timeout:0 with
  | `Read m -> check Alcotest.string "board" "ok" (Bytes.to_string m)
  | _ -> Alcotest.fail "blackboard should hold a message"

let warm_restart_preserves_objects () =
  let s = objects_fixture () in
  System.run s ~ticks:60;
  let intra = System.intra_of s (pid 0) in
  ignore (Intra.set_event intra ~now:60 ~name:"go");
  (* Warm restart: the event object and its state survive. *)
  Result.get_ok (System.restart_partition s (pid 0) Partition.Warm_start);
  System.run s ~ticks:10;
  check (Alcotest.option Alcotest.bool) "event survives warm" (Some true)
    (Intra.event_is_up intra ~name:"go")

let cold_restart_resets_objects () =
  let s = objects_fixture () in
  System.run s ~ticks:60;
  let intra = System.intra_of s (pid 0) in
  ignore (Intra.set_event intra ~now:60 ~name:"go");
  Result.get_ok (System.restart_partition s (pid 0) Partition.Cold_start);
  System.run s ~ticks:10;
  (* The object was recreated from its configuration: event down again. *)
  check (Alcotest.option Alcotest.bool) "event reset by cold" (Some false)
    (Intra.event_is_up intra ~name:"go")

(* --- Configuration grammar for the new features ------------------------------ *)

let config_with_objects = {|
(air-system
  (partitions
    (partition (name A) (error-handler medic)
      (objects (semaphore mutex 1 1 fifo)
               (event go)
               (blackboard status 32)
               (buffer queue 4 32 priority))
      (processes
        (process (name worker) (period 50) (capacity 50) (wcet 5) (priority 5)
          (script (compute 5) (lock-preemption) (display-blackboard status "ok")
                  (unlock-preemption) (periodic-wait)))
        (process (name medic) (priority 0) (autostart false)
          (script (log "medic") (stop-self))))))
  (schedules
    (schedule (name only) (mtf 50)
      (requirements (req (partition A) (cycle 50) (duration 50)))
      (windows (window (partition A) (offset 0) (duration 50))))))
|}

let grammar_roundtrip () =
  match Air_config.Loader.load config_with_objects with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
    (match cfg.System.partitions with
    | [ setup ] ->
      check Alcotest.int "objects decoded" 4
        (List.length setup.System.intra_objects);
      check (Alcotest.option Alcotest.string) "handler" (Some "medic")
        setup.System.error_handler
    | _ -> Alcotest.fail "one partition expected");
    (* Encode → load fixpoint with the new fields. *)
    let doc = Air_config.Encode.to_string cfg in
    (match Air_config.Loader.load doc with
    | Error e -> Alcotest.failf "re-load: %s" e
    | Ok cfg' ->
      check Alcotest.string "fixpoint" doc (Air_config.Encode.to_string cfg'));
    (* And the system actually runs with those objects. *)
    let s = System.create cfg in
    System.run s ~ticks:200;
    check Alcotest.bool "alive" true (System.halted s = None)

let suite =
  [ Alcotest.test_case "lock prevents preemption" `Quick
      lock_prevents_preemption;
    Alcotest.test_case "lock nests" `Quick lock_nests;
    Alcotest.test_case "lock released on block" `Quick lock_released_on_block;
    Alcotest.test_case "lock misuse rejected" `Quick lock_misuse_rejected;
    Alcotest.test_case "lock through scripts" `Quick lock_through_scripts;
    Alcotest.test_case "error handler invoked" `Quick error_handler_invoked;
    Alcotest.test_case "error handler must exist" `Quick
      error_handler_must_exist;
    Alcotest.test_case "objects created at init" `Quick
      objects_created_at_init;
    Alcotest.test_case "warm restart preserves objects" `Quick
      warm_restart_preserves_objects;
    Alcotest.test_case "cold restart resets objects" `Quick
      cold_restart_resets_objects;
    Alcotest.test_case "config grammar for objects/handler" `Quick
      grammar_roundtrip ]
