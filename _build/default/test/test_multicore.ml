(* Tests for the multicore extension (paper future work iv): table
   validation including the cross-core self-overlap rule, per-core
   projections, cross-core supply, and the broadcast PMK. *)

open Air_model
open Air
open Ident

let check = Alcotest.check
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* Two cores, MTF 100: P1 owns core 0 entirely; P2 and P3 share core 1. *)
let duo =
  Multicore.make ~id:(sid 0) ~name:"duo" ~mtf:100
    ~requirements:[ q (pid 0) 100 100; q (pid 1) 100 40; q (pid 2) 100 60 ]
    [ [ w (pid 0) 0 100 ]; [ w (pid 1) 0 40; w (pid 2) 40 60 ] ]

(* P1 gets windows on both cores, disjoint in time — legal, and its supply
   per cycle is the sum. *)
let migrating =
  Multicore.make ~id:(sid 0) ~name:"migrating" ~mtf:100
    ~requirements:[ q (pid 0) 100 70; q (pid 1) 100 60 ]
    [ [ w (pid 0) 0 40; w (pid 1) 40 60 ]; [ w (pid 0) 40 30 ] ]

let valid_tables () =
  check Alcotest.int "duo valid" 0 (List.length (Multicore.validate duo));
  check Alcotest.int "migrating valid" 0
    (List.length (Multicore.validate migrating))

let self_overlap_detected () =
  let bad =
    Multicore.make ~id:(sid 0) ~name:"bad" ~mtf:100
      ~requirements:[ q (pid 0) 100 50 ]
      [ [ w (pid 0) 0 50 ]; [ w (pid 0) 25 50 ] ]
  in
  check Alcotest.bool "parallel self overlap" true
    (List.exists
       (function Multicore.Parallel_self_overlap _ -> true | _ -> false)
       (Multicore.validate bad))

let per_core_overlap_detected () =
  let bad =
    Multicore.make ~id:(sid 0) ~name:"bad" ~mtf:100
      ~requirements:[ q (pid 0) 100 30; q (pid 1) 100 30 ]
      [ [ w (pid 0) 0 30; w (pid 1) 20 30 ]; [] ]
  in
  check Alcotest.bool "core-level eq.(21)" true
    (List.exists
       (function
         | Multicore.Core_diagnostic
             { diagnostic = Validate.Window_overlap _; _ } ->
           true
         | _ -> false)
       (Multicore.validate bad))

let cross_core_supply_counts () =
  (* migrating: P1 has 40 on core 0 and 30 on core 1 → 70 per cycle. *)
  check Alcotest.int "summed supply" 70
    (Multicore.cycle_supply migrating (pid 0) ~k:0);
  let insufficient =
    Multicore.make ~id:(sid 0) ~name:"short" ~mtf:100
      ~requirements:[ q (pid 0) 100 80 ]
      [ [ w (pid 0) 0 40 ]; [ w (pid 0) 40 30 ] ]
  in
  check Alcotest.bool "eq.(23) multicore" true
    (List.exists
       (function
         | Multicore.Insufficient_cycle_duration { provided = 70; required = 80; _ } ->
           true
         | _ -> false)
       (Multicore.validate insufficient))

let core_view_projection () =
  let view0 = Multicore.core_view duo ~core:0 in
  let view1 = Multicore.core_view duo ~core:1 in
  check Alcotest.int "core 0: one window" 1 (List.length view0.Schedule.windows);
  check Alcotest.int "core 1: two windows" 2 (List.length view1.Schedule.windows);
  (* Projected requirements have zero duration so the single-core
     validator does not re-impose eq. (23) per lane. *)
  check Alcotest.int "view valid" 0 (List.length (Validate.validate view1));
  check Alcotest.bool "P1 absent from core 1" true
    (Option.is_none (Schedule.requirement_for view1 (pid 0)))

let utilization_across_cores () =
  check (Alcotest.float 1e-9) "duo utilization" 2.0 (Multicore.utilization duo);
  check (Alcotest.float 1e-9) "migrating utilization" 1.3
    (Multicore.utilization migrating)

(* --- Pmk_mc --------------------------------------------------------------- *)

let alt =
  Multicore.make ~id:(sid 1) ~name:"alt" ~mtf:100
    ~requirements:[ q (pid 0) 100 100; q (pid 1) 100 60; q (pid 2) 100 40 ]
    [ [ w (pid 0) 0 100 ]; [ w (pid 2) 0 40; w (pid 1) 40 60 ] ]

let mc_parallel_dispatch () =
  let pmk = Pmk_mc.create ~partition_count:3 [ duo; alt ] in
  check Alcotest.int "two cores" 2 (Pmk_mc.core_count pmk);
  ignore (Pmk_mc.tick pmk);
  (* At tick 0: P1 on core 0 and P2 on core 1, in parallel. *)
  (match Pmk_mc.active_partitions pmk with
  | [| Some a; Some b |] ->
    check Alcotest.bool "core0 = P1" true (Partition_id.equal a (pid 0));
    check Alcotest.bool "core1 = P2" true (Partition_id.equal b (pid 1))
  | _ -> Alcotest.fail "expected two active partitions");
  for _ = 1 to 40 do
    ignore (Pmk_mc.tick pmk)
  done;
  (* Core 1 switched to P3 at offset 40; core 0 unchanged. *)
  match Pmk_mc.active_partitions pmk with
  | [| Some a; Some b |] ->
    check Alcotest.bool "core0 still P1" true (Partition_id.equal a (pid 0));
    check Alcotest.bool "core1 = P3" true (Partition_id.equal b (pid 2))
  | _ -> Alcotest.fail "expected two active partitions"

let mc_broadcast_switch () =
  let pmk = Pmk_mc.create ~partition_count:3 [ duo; alt ] in
  ignore (Pmk_mc.tick pmk);
  Result.get_ok (Pmk_mc.request_schedule_switch pmk (sid 1));
  let switch_ticks = ref [] in
  for _ = 1 to 120 do
    let outcomes = Pmk_mc.tick pmk in
    Array.iteri
      (fun core o ->
        match o.Pmk.schedule_switched with
        | Some _ -> switch_ticks := (core, Pmk_mc.ticks pmk) :: !switch_ticks
        | None -> ())
      outcomes
  done;
  (* Both cores switch at the same MTF boundary. *)
  check
    Alcotest.(list (pair int int))
    "synchronized" [ (0, 100); (1, 100) ]
    (List.sort compare !switch_ticks);
  check Alcotest.bool "current is alt" true
    (Schedule_id.equal (Pmk_mc.current_schedule pmk) (sid 1));
  (* Under alt, core 1 starts with P3. *)
  match Pmk_mc.active_partitions pmk with
  | [| _; Some b |] ->
    (* At tick 120, offset 20 of alt: P3 owns [0,40) of core 1. *)
    check Alcotest.bool "core1 = P3 under alt" true
      (Partition_id.equal b (pid 2))
  | _ -> Alcotest.fail "expected active partition on core 1"

let mc_rejects_invalid () =
  let bad =
    Multicore.make ~id:(sid 0) ~name:"bad" ~mtf:100
      ~requirements:[ q (pid 0) 100 50 ]
      [ [ w (pid 0) 0 50 ]; [ w (pid 0) 0 50 ] ]
  in
  check Alcotest.bool "raises" true
    (try
       ignore (Pmk_mc.create ~partition_count:1 [ bad ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "valid tables" `Quick valid_tables;
    Alcotest.test_case "parallel self-overlap detected" `Quick
      self_overlap_detected;
    Alcotest.test_case "per-core overlap detected" `Quick
      per_core_overlap_detected;
    Alcotest.test_case "cross-core supply" `Quick cross_core_supply_counts;
    Alcotest.test_case "core view projection" `Quick core_view_projection;
    Alcotest.test_case "utilization across cores" `Quick
      utilization_across_cores;
    Alcotest.test_case "pmk_mc: parallel dispatch" `Quick mc_parallel_dispatch;
    Alcotest.test_case "pmk_mc: broadcast switch" `Quick mc_broadcast_switch;
    Alcotest.test_case "pmk_mc: rejects invalid tables" `Quick
      mc_rejects_invalid ]
