(* A randomized fault-injection campaign over the Sect. 6 prototype: the
   dependability claim, stress-tested. Faults are injected at random
   instants — runaway process starts/stops, partition restarts and
   shutdowns, schedule-switch requests — and after every campaign the
   architecture's invariants must hold:

   - temporal containment: deadline violations only ever hit the partition
     hosting the faulty process;
   - the module never halts (no module-level action is configured);
   - healthy partitions keep producing output;
   - the simulation remains deterministic under the same seed. *)

open Air_sim
open Air_model
open Air
open Ident

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

type fault =
  | Inject_faulty
  | Stop_faulty
  | Restart_p1 of Partition.mode
  | Switch of int
  | Operator_idle_p4

let fault_gen =
  QCheck.Gen.(
    frequency
      [ (4, return Inject_faulty);
        (2, return Stop_faulty);
        (1, return (Restart_p1 Partition.Warm_start));
        (1, return (Restart_p1 Partition.Cold_start));
        (2, map (fun b -> Switch (if b then 1 else 0)) bool);
        (1, return Operator_idle_p4) ])

let campaign_gen =
  QCheck.Gen.(
    list_size (int_range 1 8) (pair fault_gen (int_range 1 2600)))

let apply_fault s = function
  | Inject_faulty ->
    ignore
      (System.start_process s Air_workload.Satellite.p1
         ~name:Air_workload.Satellite.faulty_process_name)
  | Stop_faulty ->
    ignore
      (System.stop_process s Air_workload.Satellite.p1
         ~name:Air_workload.Satellite.faulty_process_name)
  | Restart_p1 mode ->
    ignore (System.restart_partition s Air_workload.Satellite.p1 mode)
  | Switch 0 -> ignore (System.request_schedule s Air_workload.Satellite.chi1)
  | Switch _ -> ignore (System.request_schedule s Air_workload.Satellite.chi2)
  | Operator_idle_p4 ->
    ignore
      (System.restart_partition s Air_workload.Satellite.p4 Partition.Idle)

let run_campaign faults =
  let s = Air_workload.Satellite.make () in
  let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) faults in
  let cursor = ref 0 in
  List.iter
    (fun (fault, at) ->
      if at > !cursor then begin
        System.run s ~ticks:(at - !cursor);
        cursor := at
      end;
      apply_fault s fault)
    sorted;
  System.run s ~ticks:(6500 - !cursor);
  s

let containment_campaign =
  QCheck.Test.make ~name:"fault campaigns never breach containment"
    ~count:40 (QCheck.make campaign_gen) (fun faults ->
      let s = run_campaign faults in
      let p4_idled =
        List.exists (fun (f, _) -> f = Operator_idle_p4) faults
      in
      (* 1. Violations only on P1 (the only partition hosting a fault). *)
      List.for_all
        (fun (_, proc, _) ->
          Partition_id.equal (Process_id.partition proc)
            Air_workload.Satellite.p1)
        (System.violations s)
      (* 2. The module survives. *)
      && System.halted s = None
      (* 3. Healthy partitions (P2, P3) stayed in normal mode. *)
      && List.for_all
           (fun p ->
             Partition.mode_equal (System.partition_mode s p) Partition.Normal)
           [ Air_workload.Satellite.p2; Air_workload.Satellite.p3 ]
      (* 4. P4 is either running, or idle exactly when the operator shut it
         down and no restart followed. *)
      && (Partition.mode_equal
            (System.partition_mode s Air_workload.Satellite.p4)
            Partition.Normal
          || p4_idled))

let campaign_deterministic =
  QCheck.Test.make ~name:"fault campaigns are deterministic" ~count:10
    (QCheck.make campaign_gen) (fun faults ->
      let fingerprint () =
        let s = run_campaign faults in
        ( Trace.total (System.trace s),
          List.length (System.violations s),
          Hm.error_count (System.hm s) )
      in
      fingerprint () = fingerprint ())

let healthy_output_continues () =
  (* Even with the faulty process running the whole time, TTC keeps
     downlinking every MTF. *)
  let s = Air_workload.Satellite.make () in
  Air_workload.Satellite.inject_fault s;
  System.run_mtfs s 8;
  let downlinks =
    Trace.count
      (function
        | Event.Application_output { line = "telemetry frame downlinked"; _ }
          ->
          true
        | _ -> false)
      (System.trace s)
  in
  check Alcotest.bool "TTC unaffected" true (downlinks >= 14)

let suite =
  [ qcheck containment_campaign;
    qcheck campaign_deterministic;
    Alcotest.test_case "healthy output continues under fault" `Quick
      healthy_output_continues ]
