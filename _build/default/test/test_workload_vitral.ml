(* Tests for the workload generators and the VITRAL-style rendering. *)

open Air_model

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Workloads ------------------------------------------------------------ *)

let mission_schedules_valid () =
  check Alcotest.int "valid" 0
    (List.length (Validate.validate_set Air_workload.Mission.schedules))

let mission_runs_through_phases () =
  let s = Air_workload.Mission.make () in
  Air.System.run_mtfs s 2;
  Result.get_ok (Air.System.request_schedule s Air_workload.Mission.science);
  Air.System.run_mtfs s 2;
  Result.get_ok (Air.System.request_schedule s Air_workload.Mission.safe);
  Air.System.run_mtfs s 2;
  check Alcotest.int "two switches" 2
    (Air_sim.Trace.count Event.is_schedule_switch (Air.System.trace s));
  (* Launch phase gives the payload no processor time. *)
  let occupancy phase_start =
    Air_vitral.Gantt.occupancy
      ~partitions:(Air.System.partition_ids s)
      ~from:phase_start ~until:(phase_start + 1200) (Air.System.activity s)
  in
  let share occ p =
    match List.assoc_opt (Some p) occ with Some n -> n | None -> 0
  in
  check Alcotest.int "payload dark at launch" 0
    (share (occupancy 0) Air_workload.Mission.payload);
  check Alcotest.bool "payload lit in science" true
    (share (occupancy 2400) Air_workload.Mission.payload >= 500)

let mission_change_action_fires () =
  let s = Air_workload.Mission.make () in
  Air.System.run_mtfs s 1;
  Result.get_ok (Air.System.request_schedule s Air_workload.Mission.science);
  Air.System.run_mtfs s 3;
  (* Science's ScheduleChangeAction cold-restarts the payload at its first
     dispatch under the new schedule. *)
  check Alcotest.bool "cold restart applied" true
    (Air_sim.Trace.count
       (function
         | Event.Change_action
             { action = Schedule.Cold_restart_partition; _ } ->
           true
         | _ -> false)
       (Air.System.trace s)
    > 0)

let taskgen_properties =
  QCheck.Test.make ~name:"taskgen: structure and utilization bounds"
    QCheck.(pair int (int_range 1 6))
    (fun (seed, n) ->
      let rng = Air_sim.Rng.create seed in
      let g = Air_workload.Taskgen.generate rng ~n_partitions:n in
      List.length g.Air_workload.Taskgen.partitions = n
      && List.length g.Air_workload.Taskgen.requirements = n
      && List.for_all
           (fun ((p : Partition.t), scripts) ->
             Partition.process_count p = List.length scripts
             && Array.for_all
                  (fun (spec : Process.spec) -> spec.Process.wcet >= 1)
                  p.Partition.processes)
           g.Air_workload.Taskgen.partitions
      && List.for_all
           (fun (r : Schedule.requirement) ->
             r.Schedule.duration >= 1 && r.Schedule.duration <= r.Schedule.cycle)
           g.Air_workload.Taskgen.requirements)

let taskgen_synthesizable () =
  let rng = Air_sim.Rng.create 2024 in
  let g = Air_workload.Taskgen.generate rng ~n_partitions:4 ~utilization:0.6 in
  match Air_analysis.Synthesis.synthesize g.Air_workload.Taskgen.requirements with
  | Ok s -> check Alcotest.int "valid" 0 (List.length (Validate.validate s))
  | Error f ->
    Alcotest.failf "synthesis failed: %a" Air_analysis.Synthesis.pp_failure f

let taskgen_babbling () =
  let rng = Air_sim.Rng.create 7 in
  let g = Air_workload.Taskgen.generate rng ~n_partitions:2 in
  let g = Air_workload.Taskgen.with_babbling g ~partition:0 in
  match g.Air_workload.Taskgen.partitions with
  | ((p : Partition.t), _) :: _ ->
    check Alcotest.string "renamed" Air_workload.Taskgen.babbling_name
      p.Partition.processes.(0).Process.name;
    check Alcotest.int "highest priority" 0
      p.Partition.processes.(0).Process.base_priority
  | [] -> Alcotest.fail "no partitions"

(* --- VITRAL ---------------------------------------------------------------- *)

let window_rendering () =
  let w = Air_vitral.Window.create ~height:2 ~title:"P1" ~width:10 () in
  Air_vitral.Window.push w "hello";
  Air_vitral.Window.push w "world";
  Air_vitral.Window.push w "scrolled in";
  (* Oldest line scrolled out. *)
  check Alcotest.(list string) "scrollback" [ "world"; "scrolled i" ]
    (Air_vitral.Window.lines w);
  let rendered = Air_vitral.Window.render w in
  check Alcotest.int "height + borders" 4 (List.length rendered);
  (* Every rendered line has the same display width. *)
  let widths =
    List.map
      (fun line ->
        (* count UTF-8 codepoints *)
        let n = ref 0 in
        String.iter
          (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n)
          line;
        !n)
      rendered
  in
  (match widths with
  | first :: rest ->
    List.iter (fun width -> check Alcotest.int "uniform width" first width) rest
  | [] -> Alcotest.fail "no lines")

let window_grid () =
  let mk title =
    let w = Air_vitral.Window.create ~height:1 ~title ~width:6 () in
    Air_vitral.Window.push w title;
    w
  in
  let grid = Air_vitral.Window.render_grid ~columns:2 [ mk "a"; mk "b"; mk "c" ] in
  (* Two rows: 3 lines each (border, content, border), plus a newline join. *)
  check Alcotest.int "rows" 6 (List.length (String.split_on_char '\n' grid))

let gantt_occupancy_reconstruction () =
  (* Synthetic context-switch history: P1 owns [0,10), idle [10,15),
     P2 [15,30). *)
  let p0 = Ident.Partition_id.make 0 and p1 = Ident.Partition_id.make 1 in
  let switches = [ (0, Some p0); (10, None); (15, Some p1) ] in
  let occ =
    Air_vitral.Gantt.occupancy ~partitions:[ p0; p1 ] ~from:0 ~until:30
      switches
  in
  check Alcotest.int "P1" 10 (List.assoc (Some p0) occ);
  check Alcotest.int "P2" 15 (List.assoc (Some p1) occ);
  check Alcotest.int "idle" 5 (List.assoc None occ)

let gantt_schedule_chart_mentions_windows () =
  let chart = Air_vitral.Gantt.of_schedule Air_workload.Satellite.schedule_1 in
  check Alcotest.bool "has P1 row" true (Astring_contains.contains chart "P1");
  check Alcotest.bool "lists windows" true
    (Astring_contains.contains chart "O=400");
  check Alcotest.bool "mtf" true (Astring_contains.contains chart "MTF=1300")

let console_routing () =
  let p0 = Ident.Partition_id.make 0 and p1 = Ident.Partition_id.make 1 in
  let console =
    Air_vitral.Console.create ~window_width:40
      ~partitions:[ (p0, "ALPHA"); (p1, "BETA") ]
      ()
  in
  Air_vitral.Console.feed console 5
    (Event.Application_output { partition = p0; line = "hello alpha" });
  Air_vitral.Console.feed console 7
    (Event.Application_output { partition = p1; line = "hello beta" });
  Air_vitral.Console.feed console 9
    (Event.Schedule_switch
       { from = Ident.Schedule_id.make 0; to_ = Ident.Schedule_id.make 1 });
  Air_vitral.Console.feed console 11
    (Event.Deadline_violation
       { process = Ident.Process_id.make p0 0; deadline = 10 });
  (* Window-less events are dropped silently. *)
  Air_vitral.Console.feed console 12
    (Event.Port_send { port = "X"; bytes = 1 });
  let rendered = Air_vitral.Console.render console in
  check Alcotest.bool "alpha line" true
    (Astring_contains.contains rendered "hello alpha");
  check Alcotest.bool "beta line" true
    (Astring_contains.contains rendered "hello beta");
  check Alcotest.bool "pmk window" true
    (Astring_contains.contains rendered "schedule-switch");
  check Alcotest.bool "hm window" true
    (Astring_contains.contains rendered "DEADLINE VIOLATION")

let suite =
  [ Alcotest.test_case "mission: schedules valid" `Quick
      mission_schedules_valid;
    Alcotest.test_case "mission: phases shift processor shares" `Quick
      mission_runs_through_phases;
    Alcotest.test_case "mission: change action fires" `Quick
      mission_change_action_fires;
    qcheck taskgen_properties;
    Alcotest.test_case "taskgen: synthesizable" `Quick taskgen_synthesizable;
    Alcotest.test_case "taskgen: babbling variant" `Quick taskgen_babbling;
    Alcotest.test_case "vitral: window rendering" `Quick window_rendering;
    Alcotest.test_case "vitral: grid layout" `Quick window_grid;
    Alcotest.test_case "vitral: occupancy reconstruction" `Quick
      gantt_occupancy_reconstruction;
    Alcotest.test_case "vitral: schedule chart" `Quick
      gantt_schedule_chart_mentions_windows;
    Alcotest.test_case "vitral: console routing" `Quick console_routing ]
