test/test_pos.ml: Air_model Air_pos Air_sim Alcotest Array Bytes Format Ident Intra Kernel List Option Process Result Time
