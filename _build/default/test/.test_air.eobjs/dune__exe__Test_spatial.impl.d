test/test_spatial.ml: Air_model Air_spatial Alcotest Ident List Memory Mmu Protection QCheck QCheck_alcotest Result Tlb
