test/test_apex.ml: Air Air_ipc Air_model Air_pos Air_sim Alcotest Apex Bytes Event Ident Kernel Pal Partition Partition_id Process Result Schedule Schedule_id Script System Time Trace
