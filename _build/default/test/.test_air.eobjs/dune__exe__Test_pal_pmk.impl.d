test/test_pal_pmk.ml: Air Air_model Alcotest Ident List Option Pal Pmk Result Schedule
