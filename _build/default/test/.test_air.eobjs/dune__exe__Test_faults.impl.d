test/test_faults.ml: Air Air_model Air_sim Air_workload Alcotest Event Hm Ident Int List Partition Partition_id Process_id QCheck QCheck_alcotest System Trace
