test/test_ipc.ml: Air_ipc Air_model Alcotest Bytes Ident List Port Router
