test/test_multicore.ml: Air Air_model Alcotest Array Ident List Multicore Option Partition_id Pmk Pmk_mc Result Schedule Schedule_id Validate
