test/test_model.ml: Air_model Air_workload Alcotest Array Event Format Ident Int Option Partition Partition_id Process Process_id Schedule Schedule_id
