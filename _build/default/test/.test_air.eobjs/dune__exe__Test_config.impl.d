test/test_config.ml: Air Air_config Air_ipc Air_model Air_sim Air_workload Alcotest Astring_contains Decode Encode List Loader QCheck QCheck_alcotest Result Sexp
