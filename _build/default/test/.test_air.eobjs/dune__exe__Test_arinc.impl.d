test/test_arinc.ml: Air Air_config Air_model Air_pos Air_sim Alcotest Bytes Event Ident Intra Kernel List Partition Partition_id Process Result Schedule Schedule_id Script String System Trace
