test/test_air.mli:
