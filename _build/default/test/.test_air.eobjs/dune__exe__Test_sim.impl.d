test/test_sim.ml: Air_sim Alcotest Array Float Fun Heap Int Int64 List QCheck QCheck_alcotest Rng Stats String Time Trace Vec
