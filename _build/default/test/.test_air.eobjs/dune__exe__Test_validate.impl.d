test/test_validate.ml: Air_analysis Air_model Air_workload Alcotest Array Astring_contains Format Ident List Partition_id QCheck QCheck_alcotest Schedule Schedule_id Stdlib Validate
