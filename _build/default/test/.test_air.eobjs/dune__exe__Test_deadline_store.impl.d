test/test_deadline_store.ml: Air Air_sim Alcotest Deadline_store Format Int List QCheck QCheck_alcotest Time
