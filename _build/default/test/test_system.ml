(* Full-system integration tests: the paper's Sect. 6 prototype behaviour,
   health-monitoring recovery actions, interpartition communication through
   APEX, spatial faults, and generic-OS partitions. *)

open Air_sim
open Air_model
open Air_pos
open Air
open Ident

let check = Alcotest.check
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

let count_events p s = Trace.count p (System.trace s)

(* --- The paper's prototype (Sect. 6) ------------------------------------ *)

let prototype_clean_run () =
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 4;
  check Alcotest.int "no violations without the fault" 0
    (List.length (System.violations s));
  check Alcotest.bool "not halted" true (System.halted s = None);
  (* All four partitions reached normal mode. *)
  List.iter
    (fun p ->
      check Alcotest.bool "normal" true
        (Partition.mode_equal (System.partition_mode s p) Partition.Normal))
    (System.partition_ids s)

let prototype_fault_detected_every_dispatch () =
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 1;
  Air_workload.Satellite.inject_fault s;
  System.run_mtfs s 4;
  let violations = System.violations s in
  (* Paper: "its deadline violation is detected and reported every time
     (except the first) that P1 is scheduled and dispatched". P1 is
     dispatched at 1300, 2600, 3900, 5200 after injection; detection at
     2600, 3900, 5200. *)
  check Alcotest.(list int) "detection instants" [ 2600; 3900; 5200 ]
    (List.map (fun (t, _, _) -> t) violations);
  List.iter
    (fun (_, process, _) ->
      check Alcotest.bool "all violations on the faulty process" true
        (Partition_id.equal (Process_id.partition process)
           Air_workload.Satellite.p1))
    violations

let prototype_fault_confined_to_p1 () =
  let s = Air_workload.Satellite.make () in
  Air_workload.Satellite.inject_fault s;
  System.run_mtfs s 6;
  (* Temporal containment: the overrunning process may only hurt its own
     partition; every other partition's processes keep their deadlines. *)
  List.iter
    (fun (_, process, _) ->
      check Alcotest.bool "confined" true
        (Partition_id.equal (Process_id.partition process)
           Air_workload.Satellite.p1))
    (System.violations s);
  (* And the healthy P1 process is never the violator either (priority 5
     beats the faulty process's 20). *)
  check Alcotest.int "attitude-control unharmed" 0
    (count_events
       (function
         | Event.Deadline_violation { process; _ } ->
           Process_id.index process = 0
         | _ -> false)
       s)

let prototype_schedule_switch_no_extra_violations () =
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 1;
  (* Successive requests: the last one before the MTF boundary wins. *)
  Result.get_ok (System.request_schedule s Air_workload.Satellite.chi2);
  System.run_mtfs s 2;
  Result.get_ok (System.request_schedule s Air_workload.Satellite.chi1);
  System.run_mtfs s 2;
  check Alcotest.int "switches honoured" 2
    (count_events Event.is_schedule_switch s);
  check Alcotest.int "no violations from switching" 0
    (List.length (System.violations s))

let prototype_interpartition_traffic_flows () =
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 3;
  let sent =
    count_events (function Event.Port_send _ -> true | _ -> false) s
  in
  let received =
    count_events (function Event.Port_receive _ -> true | _ -> false) s
  in
  check Alcotest.bool "messages sent" true (sent > 0);
  check Alcotest.bool "messages received" true (received > 0);
  check Alcotest.int "no overflow" 0
    (count_events (function Event.Port_overflow _ -> true | _ -> false) s)

let prototype_activity_matches_pst () =
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 2;
  let occupancy =
    Air_vitral.Gantt.occupancy
      ~partitions:(System.partition_ids s)
      ~from:0 ~until:1300 (System.activity s)
  in
  let share p =
    match List.assoc_opt (Some p) occupancy with Some n -> n | None -> 0
  in
  check Alcotest.int "P1 share" 200 (share Air_workload.Satellite.p1);
  check Alcotest.int "P2 share" 200 (share Air_workload.Satellite.p2);
  check Alcotest.int "P3 share" 200 (share Air_workload.Satellite.p3);
  check Alcotest.int "P4 share" 700 (share Air_workload.Satellite.p4);
  check Alcotest.int "no idle in chi1" 0
    (match List.assoc_opt None occupancy with Some n -> n | None -> 0)

(* --- Health-monitoring recovery actions --------------------------------- *)

let simple_system ?(hm_tables = Hm.default_tables) ?script ?(capacity = 40)
    () =
  let script =
    Option.value script
      ~default:(Script.periodic_body [ Script.Compute 60 ])
  in
  (* One partition, full MTF; the process needs 60 ticks but its deadline
     is [capacity] — a violation every period when capacity < 60. *)
  let p =
    Partition.make ~id:(pid 0) ~name:"SOLO"
      [ Process.spec ~periodicity:(Process.Periodic 100)
          ~time_capacity:capacity ~wcet:60 ~base_priority:5 "victim" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"all" ~mtf:100
      ~requirements:[ q (pid 0) 100 100 ]
      [ w (pid 0) 0 100 ]
  in
  System.create
    (System.config ~hm_tables
       ~partitions:[ System.partition_setup p [ script ] ]
       ~schedules:[ schedule ] ())

let hm_default_ignores () =
  let s = simple_system () in
  System.run s ~ticks:300;
  check Alcotest.bool "violations logged" true
    (List.length (System.violations s) > 0);
  (* Ignore action: the process keeps running. *)
  check Alcotest.bool "process alive" true
    (match Kernel.state (System.kernel_of s (pid 0)) 0 with
    | Process.Dormant -> false
    | _ -> true)

let hm_stop_process () =
  let tables =
    { Hm.default_tables with
      Hm.process_actions =
        [ (pid 0, Error.Deadline_missed, Error.Stop_process) ] }
  in
  let s = simple_system ~hm_tables:tables () in
  System.run s ~ticks:300;
  check Alcotest.bool "stopped" true
    (Process.state_equal (Kernel.state (System.kernel_of s (pid 0)) 0)
       Process.Dormant);
  check Alcotest.bool "action event emitted" true
    (count_events
       (function
         | Event.Hm_process_action { action = Error.Stop_process; _ } -> true
         | _ -> false)
       s
    > 0)

let hm_restart_process () =
  let tables =
    { Hm.default_tables with
      Hm.process_actions =
        [ (pid 0, Error.Deadline_missed, Error.Restart_process) ] }
  in
  let s = simple_system ~hm_tables:tables () in
  System.run s ~ticks:500;
  (* Restarted from its entry point each time — still alive. *)
  check Alcotest.bool "alive" true
    (not
       (Process.state_equal (Kernel.state (System.kernel_of s (pid 0)) 0)
          Process.Dormant));
  check Alcotest.bool "several restarts" true
    (count_events
       (function
         | Event.Hm_process_action { action = Error.Restart_process; _ } ->
           true
         | _ -> false)
       s
    >= 2)

let hm_log_threshold () =
  let tables =
    { Hm.default_tables with
      Hm.process_actions =
        [ (pid 0, Error.Deadline_missed,
           Error.Log_then (2, Error.Stop_process)) ] }
  in
  let s = simple_system ~hm_tables:tables () in
  System.run s ~ticks:600;
  (* First two violations only logged; the third stops the process. *)
  let stops =
    count_events
      (function
        | Event.Hm_process_action { action = Error.Stop_process; _ } -> true
        | _ -> false)
      s
  in
  check Alcotest.int "one stop" 1 stops;
  check Alcotest.int "three violations" 3 (List.length (System.violations s))

let hm_partition_restart_on_memory_violation () =
  let tables =
    { Hm.default_tables with
      Hm.partition_actions =
        [ (pid 0, Error.Memory_violation, Error.Partition_cold_restart) ] }
  in
  (* The script reads an address far outside any mapped region. *)
  let script =
    Script.periodic_body [ Script.Compute 5; Script.Read_memory 0x7f00_0000 ]
  in
  let s = simple_system ~hm_tables:tables ~script ~capacity:100 () in
  System.run s ~ticks:250;
  check Alcotest.bool "fault reported" true
    (count_events
       (function
         | Event.Hm_error { code = Error.Memory_violation; _ } -> true
         | _ -> false)
       s
    > 0);
  check Alcotest.bool "partition restarted" true
    (count_events
       (function
         | Event.Partition_mode_change { mode = Partition.Cold_start; _ } ->
           true
         | _ -> false)
       s
    > 0);
  (* After a restart the partition re-initializes at its next dispatch and
     runs again (until the next fault); step past any in-progress restart. *)
  let rec settle n =
    if Partition.mode_equal (System.partition_mode s (pid 0)) Partition.Normal
    then true
    else if n = 0 then false
    else begin
      System.step s;
      settle (n - 1)
    end
  in
  check Alcotest.bool "back to normal" true (settle 10)

let hm_module_shutdown () =
  let tables =
    { Hm.default_tables with
      Hm.module_actions = [ (Error.Hardware_fault, Error.Module_shutdown) ] }
  in
  let s = simple_system ~hm_tables:tables ~capacity:1000 () in
  System.run s ~ticks:50;
  System.inject_module_error s Error.Hardware_fault ~detail:"SEU";
  check Alcotest.bool "halted" true (System.halted s <> None);
  let before = System.now s in
  System.run s ~ticks:50;
  check Alcotest.int "clock frozen after halt" before (System.now s)

(* --- Memory access through scripts --------------------------------------- *)

let legitimate_memory_access_granted () =
  let s = simple_system ~capacity:1000 () in
  let region =
    match System.region_of s (pid 0) Air_spatial.Memory.Data with
    | Some r -> r
    | None -> Alcotest.fail "no data region"
  in
  (* Drive an in-bounds write via a fresh system whose script touches the
     partition's own data region. *)
  let script =
    Script.periodic_body
      [ Script.Compute 5; Script.Write_memory region.Air_spatial.Memory.base ]
  in
  let s = simple_system ~script ~capacity:1000 () in
  System.run s ~ticks:250;
  check Alcotest.bool "granted accesses" true
    (count_events
       (function
         | Event.Memory_access { granted = true; _ } -> true
         | _ -> false)
       s
    > 0);
  check Alcotest.int "no faults" 0
    (count_events
       (function
         | Event.Memory_access { granted = false; _ } -> true
         | _ -> false)
       s)

(* --- Generic (round-robin) partition ------------------------------------- *)

let generic_partition_coexists () =
  let rt =
    Partition.make ~id:(pid 0) ~name:"RT"
      [ Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
          ~wcet:20 ~base_priority:5 "control" ]
  in
  let gen =
    Partition.make ~id:(pid 1) ~name:"LINUX"
      [ Process.spec ~base_priority:10 "shell";
        Process.spec ~base_priority:10 "logger" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"mix" ~mtf:100
      ~requirements:[ q (pid 0) 100 40; q (pid 1) 100 60 ]
      [ w (pid 0) 0 40; w (pid 1) 40 60 ]
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup rt
               [ Script.periodic_body [ Script.Compute 20 ] ];
             System.partition_setup gen
               ~policy:(Kernel.Round_robin { quantum = 5 })
               [ Script.make [ Script.Compute 1_000_000 ];
                 Script.make
                   [ Script.Compute 3; Script.Disable_interrupts ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:1000;
  (* The non-real-time partition cannot undermine the RT partition. *)
  check Alcotest.int "RT partition misses nothing" 0
    (List.length (System.violations s));
  (* The paravirtualization trap fired and was contained. *)
  check Alcotest.bool "trap logged" true
    (count_events
       (function
         | Event.Hm_error { code = Error.Illegal_request; _ } -> true
         | _ -> false)
       s
    > 0);
  check Alcotest.bool "still running" true (System.halted s = None);
  (* Round-robin shared the window between both generic processes. *)
  let k = System.kernel_of s (pid 1) in
  check Alcotest.bool "logger ran" true
    (not (Process.state_equal (Kernel.state k 1) Process.Dormant))

(* --- APEX services through scripts --------------------------------------- *)

let unauthorized_schedule_request_rejected () =
  let app =
    Partition.make ~id:(pid 0) ~name:"APP"
      [ Process.spec ~base_priority:5 "sneaky" ]
  in
  let s0 =
    Schedule.make ~id:(sid 0) ~name:"only" ~mtf:100
      ~requirements:[ q (pid 0) 100 50 ]
      [ w (pid 0) 0 50 ]
  in
  let s1 =
    Schedule.make ~id:(sid 1) ~name:"other" ~mtf:100
      ~requirements:[ q (pid 0) 100 50 ]
      [ w (pid 0) 0 50 ]
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup app
               [ Script.make
                   [ Script.Compute 2; Script.Request_schedule 1;
                     Script.Timed_wait 1000 ] ] ]
         ~schedules:[ s0; s1 ] ())
  in
  System.run s ~ticks:400;
  (* The request from an application partition raises Illegal_request and
     no switch happens. *)
  check Alcotest.bool "illegal request raised" true
    (count_events
       (function
         | Event.Hm_error { code = Error.Illegal_request; _ } -> true
         | _ -> false)
       s
    > 0);
  check Alcotest.int "no switch" 0 (count_events Event.is_schedule_switch s)

let application_error_reaches_hm () =
  let script =
    Script.make [ Script.Compute 2; Script.Raise_application_error "boom";
                  Script.Timed_wait 500 ]
  in
  let s = simple_system ~script ~capacity:1000 () in
  System.run s ~ticks:100;
  check Alcotest.bool "application error" true
    (count_events
       (function
         | Event.Hm_error { code = Error.Application_error; level = Error.Process_level; _ } ->
           true
         | _ -> false)
       s
    > 0)

let operator_stop_and_restart_partition () =
  let s = simple_system ~capacity:1000 () in
  System.run s ~ticks:50;
  Result.get_ok (System.restart_partition s (pid 0) Partition.Idle);
  check Alcotest.bool "idle" true
    (Partition.mode_equal (System.partition_mode s (pid 0)) Partition.Idle);
  System.run s ~ticks:50;
  Result.get_ok (System.restart_partition s (pid 0) Partition.Warm_start);
  System.run s ~ticks:50;
  check Alcotest.bool "back up" true
    (Partition.mode_equal (System.partition_mode s (pid 0)) Partition.Normal);
  check Alcotest.bool "reject normal" true
    (Result.is_error (System.restart_partition s (pid 0) Partition.Normal))

(* Paper Fig. 6: the APEX START service sets the deadline to t3 = now +
   time capacity and registers it with the PAL; a REPLENISH moves it to
   t4 = now + budget (keeping the store sorted); when t4 passes without
   completion, the miss is detected and reported to health monitoring. *)
let figure_6_scenario () =
  let p =
    Partition.make ~id:(pid 0) ~name:"FIG6"
      [ Process.spec ~periodicity:(Process.Periodic 1000) ~time_capacity:100
          ~wcet:500 ~base_priority:5 "worker" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"all" ~mtf:1000
      ~requirements:[ q (pid 0) 1000 1000 ]
      [ w (pid 0) 0 1000 ]
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup p
               [ Script.make
                   [ Script.Compute 50; Script.Replenish 200;
                     Script.Compute 500 ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:400;
  let registrations =
    List.filter_map
      (fun (t, ev) ->
        match ev with
        | Event.Deadline_registered { deadline; _ } -> Some (t, deadline)
        | _ -> None)
      (Trace.to_list (System.trace s))
  in
  (match registrations with
  | (t_start, t3) :: (t_repl, t4) :: _ ->
    (* t3 = start instant + capacity. *)
    check Alcotest.int "t3 = start + capacity" (t_start + 100) t3;
    (* t4 = replenish instant + budget; the replenish happened after ~50
       ticks of computation. *)
    check Alcotest.int "t4 = replenish + budget" (t_repl + 200) t4;
    check Alcotest.bool "t4 extends t3" true (t4 > t3);
    (* The violation detected is of t4, not t3 — the store was updated. *)
    (match System.violations s with
    | [ (detected, _, d) ] ->
      check Alcotest.int "violated deadline is t4" t4 d;
      check Alcotest.int "detected right after t4" (t4 + 1) detected
    | v -> Alcotest.failf "expected exactly one violation, got %d" (List.length v))
  | _ -> Alcotest.fail "expected two deadline registrations")

let replenish_prevents_violation () =
  (* The positive side of Fig. 6: with a sufficient budget the process
     finishes within the replenished deadline and no miss is reported. *)
  let p =
    Partition.make ~id:(pid 0) ~name:"OK"
      [ Process.spec ~periodicity:(Process.Periodic 1000) ~time_capacity:100
          ~wcet:200 ~base_priority:5 "worker" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"all" ~mtf:1000
      ~requirements:[ q (pid 0) 1000 1000 ]
      [ w (pid 0) 0 1000 ]
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup p
               [ (* Completion is signalled by PERIODIC_WAIT — without it
                    the (replenished) deadline would legitimately expire. *)
                 Script.periodic_body
                   [ Script.Compute 50; Script.Replenish 500;
                     Script.Compute 150 ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:900;
  check Alcotest.int "no violation" 0 (List.length (System.violations s))

let suite =
  [ Alcotest.test_case "prototype: clean run has no violations" `Quick
      prototype_clean_run;
    Alcotest.test_case "prototype: fault detected at every dispatch" `Quick
      prototype_fault_detected_every_dispatch;
    Alcotest.test_case "prototype: fault confined to P1" `Quick
      prototype_fault_confined_to_p1;
    Alcotest.test_case "prototype: switches introduce no violations" `Quick
      prototype_schedule_switch_no_extra_violations;
    Alcotest.test_case "prototype: interpartition traffic flows" `Quick
      prototype_interpartition_traffic_flows;
    Alcotest.test_case "prototype: activity matches the PST" `Quick
      prototype_activity_matches_pst;
    Alcotest.test_case "hm: default ignores (logs only)" `Quick
      hm_default_ignores;
    Alcotest.test_case "hm: stop process" `Quick hm_stop_process;
    Alcotest.test_case "hm: restart process" `Quick hm_restart_process;
    Alcotest.test_case "hm: log threshold" `Quick hm_log_threshold;
    Alcotest.test_case "hm: partition restart on memory violation" `Quick
      hm_partition_restart_on_memory_violation;
    Alcotest.test_case "hm: module shutdown" `Quick hm_module_shutdown;
    Alcotest.test_case "memory: legitimate access granted" `Quick
      legitimate_memory_access_granted;
    Alcotest.test_case "generic partition coexists" `Quick
      generic_partition_coexists;
    Alcotest.test_case "apex: unauthorized schedule request" `Quick
      unauthorized_schedule_request_rejected;
    Alcotest.test_case "apex: application error reaches HM" `Quick
      application_error_reaches_hm;
    Alcotest.test_case "operator: stop and restart partition" `Quick
      operator_stop_and_restart_partition;
    Alcotest.test_case "paper Fig. 6: START/REPLENISH/violation" `Quick
      figure_6_scenario;
    Alcotest.test_case "paper Fig. 6: replenish prevents violation" `Quick
      replenish_prevents_violation ]
