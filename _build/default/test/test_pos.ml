(* Tests for the POS kernel (heir selection per eq. (14), releases, waits,
   timeouts, round-robin policy) and the intrapartition objects. *)

open Air_sim
open Air_model
open Air_pos

let check = Alcotest.check
let pid = Ident.Partition_id.make

let periodic ?(priority = 10) ?(capacity = 100) ~period name =
  Process.spec ~periodicity:(Process.Periodic period) ~time_capacity:capacity
    ~base_priority:priority name

let aperiodic ?(priority = 10) name = Process.spec ~base_priority:priority name

let make_kernel ?(policy = Kernel.Priority_preemptive) ?(hooks = Kernel.null_hooks)
    specs =
  Kernel.create ~partition:(pid 0) ~policy ~hooks (Array.of_list specs)

let state_is k q expected =
  check Alcotest.bool
    (Format.asprintf "state of %d is %a" q Process.pp_state expected)
    true
    (Process.state_equal (Kernel.state k q) expected)

(* --- eq. (14): heir selection ------------------------------------------- *)

let heir_priority_order () =
  let k =
    make_kernel
      [ aperiodic ~priority:20 "low"; aperiodic ~priority:5 "high";
        aperiodic ~priority:10 "mid" ]
  in
  List.iter (fun q -> Result.get_ok (Kernel.start k ~now:0 q) |> ignore) [ 0; 1; 2 ];
  check (Alcotest.option Alcotest.int) "highest priority wins" (Some 1)
    (Kernel.schedule k ~now:0);
  state_is k 1 Process.Running;
  state_is k 0 Process.Ready

let heir_antiquity_tie_break () =
  (* Equal priorities: the process that has been ready the longest wins. *)
  let k = make_kernel [ aperiodic "a"; aperiodic "b" ] in
  ignore (Kernel.start k ~now:0 1);
  ignore (Kernel.start k ~now:0 0);
  (* 1 became ready before 0 — antiquity, not index, decides. *)
  check (Alcotest.option Alcotest.int) "older wins" (Some 1)
    (Kernel.schedule k ~now:0)

let running_not_preempted_by_equal () =
  let k = make_kernel [ aperiodic "a"; aperiodic "b" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.schedule k ~now:0);
  ignore (Kernel.start k ~now:1 1);
  check (Alcotest.option Alcotest.int) "keeps running" (Some 0)
    (Kernel.schedule k ~now:1)

let preemption_by_higher_priority () =
  let k = make_kernel [ aperiodic ~priority:10 "a"; aperiodic ~priority:1 "b" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.schedule k ~now:0);
  ignore (Kernel.start k ~now:1 1);
  check (Alcotest.option Alcotest.int) "preempted" (Some 1)
    (Kernel.schedule k ~now:1);
  state_is k 0 Process.Ready

let set_priority_reorders () =
  let k = make_kernel [ aperiodic ~priority:10 "a"; aperiodic ~priority:20 "b" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.start k ~now:0 1);
  ignore (Kernel.set_priority k 1 1);
  check (Alcotest.option Alcotest.int) "after set_priority" (Some 1)
    (Kernel.schedule k ~now:0)

(* --- Lifecycle ----------------------------------------------------------- *)

let start_stop_lifecycle () =
  let k = make_kernel [ aperiodic "a" ] in
  state_is k 0 Process.Dormant;
  (match Kernel.stop k 0 with
  | Error Kernel.Already_dormant -> ()
  | _ -> Alcotest.fail "expected Already_dormant");
  ignore (Kernel.start k ~now:0 0);
  state_is k 0 Process.Ready;
  (match Kernel.start k ~now:0 0 with
  | Error Kernel.Not_dormant -> ()
  | _ -> Alcotest.fail "expected Not_dormant");
  ignore (Kernel.stop k 0);
  state_is k 0 Process.Dormant

let delayed_start_releases_later () =
  let k = make_kernel [ periodic ~period:50 ~capacity:30 "p" ] in
  ignore (Kernel.start k ~now:0 ~delay:10 0);
  state_is k 0 Process.Waiting;
  Kernel.announce_ticks k ~now:5;
  state_is k 0 Process.Waiting;
  Kernel.announce_ticks k ~now:10;
  state_is k 0 Process.Ready;
  (* Deadline armed at release: 10 + 30. *)
  check Alcotest.int "deadline" 40 (Kernel.deadline_time k 0)

let periodic_wait_and_release () =
  let registered = ref [] in
  let hooks =
    { Kernel.null_hooks with
      Kernel.register_deadline =
        (fun ~process d -> registered := (process, d) :: !registered) }
  in
  let k = make_kernel ~hooks [ periodic ~period:50 ~capacity:20 "p" ] in
  ignore (Kernel.start k ~now:0 0);
  check Alcotest.(list (pair int int)) "deadline at start" [ (0, 20) ] !registered;
  ignore (Kernel.schedule k ~now:0);
  ignore (Kernel.periodic_wait k ~now:7 0);
  state_is k 0 Process.Waiting;
  (* Next release point is 50 (first release + period), not 57. *)
  Kernel.announce_ticks k ~now:49;
  state_is k 0 Process.Waiting;
  Kernel.announce_ticks k ~now:50;
  state_is k 0 Process.Ready;
  check Alcotest.int "second deadline = release + capacity" 70
    (Kernel.deadline_time k 0);
  check Alcotest.int "activations" 2 (Kernel.activations k 0)

let overrun_keeps_missed_release () =
  let k = make_kernel [ periodic ~period:50 ~capacity:20 "p" ] in
  ignore (Kernel.start k ~now:0 0);
  (* The process overruns past its next release point (50) and only calls
     PERIODIC_WAIT at t=80: it becomes ready again immediately with the
     deadline of the missed release (50 + 20). *)
  ignore (Kernel.periodic_wait k ~now:80 0);
  Kernel.announce_ticks k ~now:80;
  state_is k 0 Process.Ready;
  check Alcotest.int "past deadline armed" 70 (Kernel.deadline_time k 0)

let periodic_wait_rejected_for_aperiodic () =
  let k = make_kernel [ aperiodic "a" ] in
  ignore (Kernel.start k ~now:0 0);
  match Kernel.periodic_wait k ~now:0 0 with
  | Error Kernel.Not_periodic -> ()
  | _ -> Alcotest.fail "expected Not_periodic"

let timed_wait_wakes () =
  let k = make_kernel [ aperiodic "a" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.timed_wait k ~now:0 0 25);
  state_is k 0 Process.Waiting;
  Kernel.announce_ticks k ~now:24;
  state_is k 0 Process.Waiting;
  Kernel.announce_ticks k ~now:25;
  state_is k 0 Process.Ready;
  check Alcotest.bool "not a timeout" false (Kernel.take_timed_out k 0)

let suspend_resume () =
  let k = make_kernel [ aperiodic "a"; periodic ~period:10 "p" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.start k ~now:0 1);
  (match Kernel.suspend k ~now:0 1 with
  | Error Kernel.Invalid_for_periodic -> ()
  | _ -> Alcotest.fail "periodic processes cannot be suspended");
  ignore (Kernel.suspend k ~now:0 0);
  state_is k 0 Process.Waiting;
  (match Kernel.resume k ~now:1 0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "resume failed");
  state_is k 0 Process.Ready;
  (match Kernel.resume k ~now:1 0 with
  | Error Kernel.Not_waiting -> ()
  | _ -> Alcotest.fail "expected Not_waiting")

let suspend_timeout_sets_flag () =
  let k = make_kernel [ aperiodic "a" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.suspend k ~now:0 ~timeout:10 0);
  Kernel.announce_ticks k ~now:10;
  state_is k 0 Process.Ready;
  check Alcotest.bool "timed out" true (Kernel.take_timed_out k 0);
  check Alcotest.bool "flag cleared" false (Kernel.take_timed_out k 0)

let replenish_updates_deadline () =
  let k = make_kernel [ periodic ~period:100 ~capacity:30 "p" ] in
  ignore (Kernel.start k ~now:0 0);
  check Alcotest.int "initial" 30 (Kernel.deadline_time k 0);
  ignore (Kernel.replenish k ~now:25 0 50);
  (* Paper Fig. 6: new deadline = current instant + budget. *)
  check Alcotest.int "replenished" 75 (Kernel.deadline_time k 0)

let stop_all_clears () =
  let unregistered = ref 0 in
  let hooks =
    { Kernel.null_hooks with
      Kernel.unregister_deadline = (fun ~process:_ -> incr unregistered) }
  in
  let k =
    make_kernel ~hooks [ periodic ~period:10 "a"; periodic ~period:10 "b" ]
  in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.start k ~now:0 1);
  Kernel.stop_all k;
  state_is k 0 Process.Dormant;
  state_is k 1 Process.Dormant;
  check Alcotest.int "deadlines unregistered" 2 !unregistered

let round_robin_rotates () =
  let k =
    make_kernel ~policy:(Kernel.Round_robin { quantum = 2 })
      [ aperiodic "a"; aperiodic "b"; aperiodic "c" ]
  in
  List.iter (fun q -> ignore (Kernel.start k ~now:0 q)) [ 0; 1; 2 ];
  let order = List.init 6 (fun i -> Kernel.schedule k ~now:i) in
  (* quantum 2: each process runs two consecutive ticks. *)
  check
    Alcotest.(list (option int))
    "rotation"
    [ Some 1; Some 1; Some 2; Some 2; Some 0; Some 0 ]
    order

let round_robin_skips_blocked () =
  let k =
    make_kernel ~policy:(Kernel.Round_robin { quantum = 1 })
      [ aperiodic "a"; aperiodic "b" ]
  in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.start k ~now:0 1);
  ignore (Kernel.schedule k ~now:0);
  ignore (Kernel.timed_wait k ~now:0 1 100);
  check (Alcotest.option Alcotest.int) "only runnable" (Some 0)
    (Kernel.schedule k ~now:1);
  check (Alcotest.option Alcotest.int) "still" (Some 0) (Kernel.schedule k ~now:2)

let ready_set_matches_eq15 () =
  let k = make_kernel [ aperiodic "a"; aperiodic "b"; aperiodic "c" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.start k ~now:0 2);
  ignore (Kernel.schedule k ~now:0);
  (* Ready_m(t) = ready or running processes. *)
  check Alcotest.(list int) "ready set" [ 0; 2 ] (Kernel.ready_set k)

let no_lost_activations_across_blackouts () =
  (* Releases that pass while the partition is inactive are served in
     order when ticks are finally announced: the process re-releases
     immediately at each missed release point, so activations are counted
     and deadlines armed for every period. *)
  let k = make_kernel [ periodic ~period:50 ~capacity:50 "p" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.schedule k ~now:0);
  ignore (Kernel.periodic_wait k ~now:5 0);
  (* A long blackout: announce only at t = 200, with releases due at 50,
     100, 150, 200. *)
  Kernel.announce_ticks k ~now:200;
  state_is k 0 Process.Ready;
  check Alcotest.int "second activation released" 2 (Kernel.activations k 0);
  (* Completing it immediately re-releases at the next (missed) point. *)
  ignore (Kernel.schedule k ~now:200);
  ignore (Kernel.periodic_wait k ~now:200 0);
  Kernel.announce_ticks k ~now:200;
  check Alcotest.int "third activation" 3 (Kernel.activations k 0);
  (* Its deadline is the missed release + capacity, already in the past —
     the PAL will catch it, which is the correct overload signal. *)
  check Alcotest.int "deadline of missed release" 150 (Kernel.deadline_time k 0)

let find_by_name_works () =
  let k = make_kernel [ aperiodic "alpha"; aperiodic "beta" ] in
  check (Alcotest.option Alcotest.int) "beta" (Some 1)
    (Kernel.find_by_name k "beta");
  check (Alcotest.option Alcotest.int) "missing" None
    (Kernel.find_by_name k "gamma")

(* --- Intra objects ------------------------------------------------------- *)

let intra_fixture () =
  let k = make_kernel [ aperiodic "a"; aperiodic "b"; aperiodic "c" ] in
  List.iter (fun q -> ignore (Kernel.start k ~now:0 q)) [ 0; 1; 2 ];
  (k, Intra.create k)

let semaphore_counting () =
  let k, i = intra_fixture () in
  Result.get_ok
    (Intra.create_semaphore i ~name:"sem" ~initial:1 ~maximum:2 Intra.Fifo);
  check Alcotest.bool "acquire" true
    (Intra.wait_semaphore i ~now:0 ~process:0 ~name:"sem" ~timeout:Time.infinity
     = `Done);
  (* Now empty: polling fails, blocking blocks. *)
  check Alcotest.bool "poll" true
    (Intra.wait_semaphore i ~now:0 ~process:1 ~name:"sem" ~timeout:0
     = `Unavailable);
  check Alcotest.bool "block" true
    (Intra.wait_semaphore i ~now:0 ~process:1 ~name:"sem"
       ~timeout:Time.infinity
     = `Blocked);
  state_is k 1 Process.Waiting;
  (* Signal hands the semaphore to the waiter. *)
  check Alcotest.bool "signal" true (Intra.signal_semaphore i ~now:1 ~name:"sem" = `Done);
  state_is k 1 Process.Ready;
  check (Alcotest.option Alcotest.int) "count still 0" (Some 0)
    (Intra.semaphore_value i ~name:"sem");
  (* Signalling with no waiters increments up to the maximum. *)
  ignore (Intra.signal_semaphore i ~now:1 ~name:"sem");
  ignore (Intra.signal_semaphore i ~now:1 ~name:"sem");
  check Alcotest.bool "at max" true
    (Intra.signal_semaphore i ~now:1 ~name:"sem" = `Unavailable)

let semaphore_timeout () =
  let k, i = intra_fixture () in
  Result.get_ok
    (Intra.create_semaphore i ~name:"sem" ~initial:0 ~maximum:1 Intra.Fifo);
  ignore (Intra.wait_semaphore i ~now:0 ~process:0 ~name:"sem" ~timeout:10);
  Kernel.announce_ticks k ~now:10;
  state_is k 0 Process.Ready;
  check Alcotest.bool "timed out" true (Kernel.take_timed_out k 0)

let event_broadcast () =
  let k, i = intra_fixture () in
  Result.get_ok (Intra.create_event i ~name:"ev");
  ignore (Intra.wait_event i ~now:0 ~process:0 ~name:"ev" ~timeout:Time.infinity);
  ignore (Intra.wait_event i ~now:0 ~process:1 ~name:"ev" ~timeout:Time.infinity);
  state_is k 0 Process.Waiting;
  state_is k 1 Process.Waiting;
  ignore (Intra.set_event i ~now:1 ~name:"ev");
  (* SET wakes every waiter. *)
  state_is k 0 Process.Ready;
  state_is k 1 Process.Ready;
  (* Event stays up until reset. *)
  check Alcotest.bool "up: immediate" true
    (Intra.wait_event i ~now:2 ~process:2 ~name:"ev" ~timeout:Time.infinity
     = `Done);
  ignore (Intra.reset_event i ~name:"ev");
  check (Alcotest.option Alcotest.bool) "down" (Some false)
    (Intra.event_is_up i ~name:"ev")

let blackboard_semantics () =
  let k, i = intra_fixture () in
  Result.get_ok (Intra.create_blackboard i ~name:"bb" ~max_message_size:16);
  (* Empty board blocks a reader; display wakes it with the message. *)
  (match Intra.read_blackboard i ~now:0 ~process:0 ~name:"bb" ~timeout:Time.infinity with
  | `Blocked -> ()
  | _ -> Alcotest.fail "expected block");
  ignore (Intra.display_blackboard i ~now:1 ~name:"bb" (Bytes.of_string "msg"));
  state_is k 0 Process.Ready;
  check (Alcotest.option Alcotest.string) "delivered" (Some "msg")
    (Option.map Bytes.to_string (Intra.take_delivery i ~process:0));
  (* Non-destructive read once displayed. *)
  (match Intra.read_blackboard i ~now:2 ~process:1 ~name:"bb" ~timeout:0 with
  | `Read m -> check Alcotest.string "read" "msg" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected read");
  ignore (Intra.clear_blackboard i ~name:"bb");
  (match Intra.read_blackboard i ~now:3 ~process:1 ~name:"bb" ~timeout:0 with
  | `Unavailable -> ()
  | _ -> Alcotest.fail "expected empty after clear");
  check Alcotest.bool "too large" true
    (Intra.display_blackboard i ~now:4 ~name:"bb" (Bytes.make 32 'x')
     = `Message_too_large)

let buffer_fifo_and_blocking () =
  let k, i = intra_fixture () in
  Result.get_ok
    (Intra.create_buffer i ~name:"buf" ~depth:1 ~max_message_size:16 Intra.Fifo);
  (* Send to empty buffer with no readers: enqueued. *)
  check Alcotest.bool "send" true
    (Intra.send_buffer i ~now:0 ~process:0 ~name:"buf" (Bytes.of_string "m1")
       ~timeout:Time.infinity
     = `Done);
  (* Buffer full: poll fails, blocking sender parks its message. *)
  check Alcotest.bool "full poll" true
    (Intra.send_buffer i ~now:0 ~process:0 ~name:"buf" (Bytes.of_string "m2")
       ~timeout:0
     = `Unavailable);
  check Alcotest.bool "blocked send" true
    (Intra.send_buffer i ~now:0 ~process:0 ~name:"buf" (Bytes.of_string "m2")
       ~timeout:Time.infinity
     = `Blocked);
  state_is k 0 Process.Waiting;
  (* Receive frees space and admits the parked message. *)
  (match Intra.receive_buffer i ~now:1 ~process:1 ~name:"buf" ~timeout:0 with
  | `Read m -> check Alcotest.string "fifo" "m1" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected m1");
  state_is k 0 Process.Ready;
  check (Alcotest.option Alcotest.int) "m2 queued" (Some 1)
    (Intra.buffer_occupancy i ~name:"buf");
  (* Blocked reader is served directly by the next send. *)
  (match Intra.receive_buffer i ~now:2 ~process:1 ~name:"buf" ~timeout:0 with
  | `Read m -> check Alcotest.string "m2" "m2" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected m2");
  (match Intra.receive_buffer i ~now:3 ~process:1 ~name:"buf" ~timeout:Time.infinity with
  | `Blocked -> ()
  | _ -> Alcotest.fail "expected block");
  ignore
    (Intra.send_buffer i ~now:4 ~process:2 ~name:"buf" (Bytes.of_string "m3")
       ~timeout:0);
  state_is k 1 Process.Ready;
  check (Alcotest.option Alcotest.string) "direct delivery" (Some "m3")
    (Option.map Bytes.to_string (Intra.take_delivery i ~process:1))

let object_creation_errors () =
  let _, i = intra_fixture () in
  Result.get_ok (Intra.create_event i ~name:"ev");
  (match Intra.create_event i ~name:"ev" with
  | Error (Intra.Already_exists _) -> ()
  | _ -> Alcotest.fail "expected Already_exists");
  (match Intra.create_semaphore i ~name:"s" ~initial:5 ~maximum:2 Intra.Fifo with
  | Error (Intra.Bad_parameter _) -> ()
  | _ -> Alcotest.fail "expected Bad_parameter");
  check Alcotest.bool "missing object" true
    (Intra.signal_semaphore i ~now:0 ~name:"nope" = `No_such_object)

let priority_discipline_order () =
  let k = make_kernel [ aperiodic ~priority:9 "lo"; aperiodic ~priority:1 "hi" ] in
  ignore (Kernel.start k ~now:0 0);
  ignore (Kernel.start k ~now:0 1);
  let i = Intra.create k in
  Result.get_ok
    (Intra.create_semaphore i ~name:"s" ~initial:0 ~maximum:1 Intra.Priority);
  (* lo blocks first, hi second; priority discipline serves hi first. *)
  ignore (Intra.wait_semaphore i ~now:0 ~process:0 ~name:"s" ~timeout:Time.infinity);
  ignore (Intra.wait_semaphore i ~now:0 ~process:1 ~name:"s" ~timeout:Time.infinity);
  ignore (Intra.signal_semaphore i ~now:1 ~name:"s");
  state_is k 1 Process.Ready;
  state_is k 0 Process.Waiting

let suite =
  [ Alcotest.test_case "heir: priority order (eq. 14)" `Quick
      heir_priority_order;
    Alcotest.test_case "heir: antiquity tie-break" `Quick
      heir_antiquity_tie_break;
    Alcotest.test_case "heir: no preemption by equals" `Quick
      running_not_preempted_by_equal;
    Alcotest.test_case "heir: preemption by higher priority" `Quick
      preemption_by_higher_priority;
    Alcotest.test_case "set_priority reorders" `Quick set_priority_reorders;
    Alcotest.test_case "start/stop lifecycle" `Quick start_stop_lifecycle;
    Alcotest.test_case "delayed start" `Quick delayed_start_releases_later;
    Alcotest.test_case "periodic wait and release" `Quick
      periodic_wait_and_release;
    Alcotest.test_case "overrun keeps missed release" `Quick
      overrun_keeps_missed_release;
    Alcotest.test_case "periodic wait rejected for aperiodic" `Quick
      periodic_wait_rejected_for_aperiodic;
    Alcotest.test_case "timed wait wakes" `Quick timed_wait_wakes;
    Alcotest.test_case "suspend/resume" `Quick suspend_resume;
    Alcotest.test_case "suspend timeout flag" `Quick suspend_timeout_sets_flag;
    Alcotest.test_case "replenish updates deadline" `Quick
      replenish_updates_deadline;
    Alcotest.test_case "stop_all clears" `Quick stop_all_clears;
    Alcotest.test_case "round robin rotates" `Quick round_robin_rotates;
    Alcotest.test_case "round robin skips blocked" `Quick
      round_robin_skips_blocked;
    Alcotest.test_case "ready set (eq. 15)" `Quick ready_set_matches_eq15;
    Alcotest.test_case "find_by_name" `Quick find_by_name_works;
    Alcotest.test_case "no lost activations across blackouts" `Quick
      no_lost_activations_across_blackouts;
    Alcotest.test_case "semaphore counting" `Quick semaphore_counting;
    Alcotest.test_case "semaphore timeout" `Quick semaphore_timeout;
    Alcotest.test_case "event broadcast" `Quick event_broadcast;
    Alcotest.test_case "blackboard semantics" `Quick blackboard_semantics;
    Alcotest.test_case "buffer FIFO and blocking" `Quick
      buffer_fifo_and_blocking;
    Alcotest.test_case "object creation errors" `Quick object_creation_errors;
    Alcotest.test_case "priority queuing discipline" `Quick
      priority_discipline_order ]
