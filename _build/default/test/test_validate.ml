(* Tests for the verification of integrator-defined parameters:
   eqs. (21)–(23) and the structural conditions of eqs. (18)–(20). *)

open Air_model
open Ident

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

let valid_schedule =
  Schedule.make ~id:(sid 0) ~name:"ok" ~mtf:100
    ~requirements:[ q (pid 0) 50 20; q (pid 1) 100 30 ]
    [ w (pid 0) 0 20; w (pid 1) 20 30; w (pid 0) 50 20 ]

let has_diag pred diags = List.exists pred diags

let valid_passes () =
  check Alcotest.int "no diagnostics" 0
    (List.length (Validate.validate valid_schedule))

let fig8_valid () =
  check Alcotest.int "paper PSTs valid" 0
    (List.length
       (Validate.validate_set
          [ Air_workload.Satellite.schedule_1;
            Air_workload.Satellite.schedule_2 ]))

let overlap_detected () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"overlap" ~mtf:100
      ~requirements:[ q (pid 0) 100 40; q (pid 1) 100 20 ]
      [ w (pid 0) 0 40; w (pid 1) 30 20 ]
  in
  check Alcotest.bool "eq.(21) first part" true
    (has_diag
       (function Validate.Window_overlap _ -> true | _ -> false)
       (Validate.validate s))

let window_beyond_mtf_detected () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"spill" ~mtf:100
      ~requirements:[ q (pid 0) 100 40 ]
      [ w (pid 0) 80 40 ]
  in
  check Alcotest.bool "eq.(21) second part" true
    (has_diag
       (function Validate.Window_exceeds_mtf _ -> true | _ -> false)
       (Validate.validate s))

let mtf_lcm_detected () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"lcm" ~mtf:130
      ~requirements:[ q (pid 0) 100 10 ]
      [ w (pid 0) 0 10 ]
  in
  check Alcotest.bool "eq.(22)" true
    (has_diag
       (function Validate.Mtf_not_multiple_of_lcm _ -> true | _ -> false)
       (Validate.validate s))

let insufficient_duration_detected () =
  (* P1 needs 20 per 50-tick cycle but the second cycle only gets 10. *)
  let s =
    Schedule.make ~id:(sid 0) ~name:"short" ~mtf:100
      ~requirements:[ q (pid 0) 50 20 ]
      [ w (pid 0) 0 20; w (pid 0) 50 10 ]
  in
  let diags = Validate.validate s in
  check Alcotest.bool "eq.(23)" true
    (has_diag
       (function
         | Validate.Insufficient_cycle_duration { cycle_index = 1; provided = 10; required = 20; _ } ->
           true
         | _ -> false)
       diags)

let window_outside_q_detected () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"ghost" ~mtf:100
      ~requirements:[ q (pid 0) 100 10 ]
      [ w (pid 0) 0 10; w (pid 9) 50 10 ]
  in
  check Alcotest.bool "eq.(20)" true
    (has_diag
       (function
         | Validate.Window_for_unknown_partition _ -> true
         | _ -> false)
       (Validate.validate s))

let duplicate_requirement_detected () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"dup" ~mtf:100
      ~requirements:[ q (pid 0) 100 10; q (pid 0) 100 10 ]
      [ w (pid 0) 0 20 ]
  in
  check Alcotest.bool "duplicate" true
    (has_diag
       (function Validate.Duplicate_requirement _ -> true | _ -> false)
       (Validate.validate s))

let zero_duration_partition_ok () =
  (* Partitions without strict time requirements have d = 0 (paper
     Sect. 3.1); they need no windows. *)
  let s =
    Schedule.make ~id:(sid 0) ~name:"nrt" ~mtf:100
      ~requirements:[ q (pid 0) 100 10; q (pid 1) 100 0 ]
      [ w (pid 0) 0 10 ]
  in
  check Alcotest.int "valid" 0 (List.length (Validate.validate s))

let set_level_checks () =
  check Alcotest.bool "empty set" true
    (List.mem Validate.Empty_schedule_set (Validate.validate_set []));
  let dup = valid_schedule in
  check Alcotest.bool "duplicate ids" true
    (has_diag
       (function Validate.Duplicate_schedule_id _ -> true | _ -> false)
       (Validate.validate_set [ dup; dup ]))

let cycle_supply_eq25 () =
  (* The paper's eq. (25): P1 under χ1, k = 0, supply 200 ≥ d = 200. *)
  check Alcotest.int "eq.(25)" 200
    (Validate.cycle_supply Air_workload.Satellite.schedule_1
       Air_workload.Satellite.p1 ~k:0);
  check Alcotest.int "P2 k=1" 100
    (Validate.cycle_supply Air_workload.Satellite.schedule_1
       Air_workload.Satellite.p2 ~k:1)

let cycle_supply_unknown_partition () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Validate: P10 has no requirement in χ1") (fun () ->
      ignore
        (Validate.cycle_supply Air_workload.Satellite.schedule_1 (pid 9) ~k:0))

let explain_contains_verdict () =
  let text =
    Format.asprintf "%t" (fun ppf ->
        Validate.explain_requirement ppf Air_workload.Satellite.schedule_1
          Air_workload.Satellite.p1 ~k:0)
  in
  check Alcotest.bool "mentions holds" true
    (Astring_contains.contains text "holds")

(* Synthesized schedules from random requirement sets are always valid —
   the property connecting Synthesis to Validate. *)
let qcheck_synthesis_validates =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* seeds = list_repeat n (pair (int_range 0 3) (int_range 1 9)) in
      return
        (List.mapi
           (fun i (cyc_idx, dur) ->
             let cycle = [| 40; 80; 160; 320 |].(cyc_idx) in
             (* Keep per-partition utilization ≤ 1/5 so the set is
                feasible. *)
             let duration = Stdlib.min dur (cycle / 5) in
             q (pid i) cycle (Stdlib.max 1 duration))
           seeds))
  in
  QCheck.Test.make ~name:"synthesized schedules satisfy eqs. (21)–(23)"
    (QCheck.make gen) (fun reqs ->
      match Air_analysis.Synthesis.synthesize reqs with
      | Error _ -> true (* earliest-fit may fail; that is not a soundness bug *)
      | Ok s -> Validate.validate s = [])

let suite =
  [ Alcotest.test_case "valid schedule passes" `Quick valid_passes;
    Alcotest.test_case "Fig. 8 tables are valid" `Quick fig8_valid;
    Alcotest.test_case "window overlap detected" `Quick overlap_detected;
    Alcotest.test_case "window beyond MTF detected" `Quick
      window_beyond_mtf_detected;
    Alcotest.test_case "MTF/lcm violation detected" `Quick mtf_lcm_detected;
    Alcotest.test_case "insufficient cycle duration detected" `Quick
      insufficient_duration_detected;
    Alcotest.test_case "window outside Q detected" `Quick
      window_outside_q_detected;
    Alcotest.test_case "duplicate requirement detected" `Quick
      duplicate_requirement_detected;
    Alcotest.test_case "zero-duration partitions allowed" `Quick
      zero_duration_partition_ok;
    Alcotest.test_case "set-level checks" `Quick set_level_checks;
    Alcotest.test_case "cycle_supply reproduces eq. (25)" `Quick
      cycle_supply_eq25;
    Alcotest.test_case "cycle_supply rejects unknown partition" `Quick
      cycle_supply_unknown_partition;
    Alcotest.test_case "explanation carries a verdict" `Quick
      explain_contains_verdict;
    qcheck qcheck_synthesis_validates ]
