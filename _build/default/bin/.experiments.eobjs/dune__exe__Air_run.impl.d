bin/air_run.ml: Air Air_config Air_model Air_sim Air_vitral Arg Array Cmd Cmdliner Event Format Ident List Out_channel Printf Term
