bin/air_validate.ml: Air Air_analysis Air_config Air_ipc Air_model Air_vitral Arg Cmd Cmdliner Format List Schedule Term Validate
