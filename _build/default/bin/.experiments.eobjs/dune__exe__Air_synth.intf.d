bin/air_synth.mli:
