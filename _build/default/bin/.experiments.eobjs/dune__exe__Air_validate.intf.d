bin/air_validate.mli:
