bin/air_synth.ml: Air_analysis Air_model Air_vitral Arg Cmd Cmdliner Format Ident List Printf Schedule String Term Validate
