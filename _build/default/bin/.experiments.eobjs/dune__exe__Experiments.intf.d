bin/experiments.mli:
