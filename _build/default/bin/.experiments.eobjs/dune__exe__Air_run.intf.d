bin/air_run.mli:
