(* air_validate — offline verification of integrator-defined parameters.

   Validates a configuration document: syntax, schedule constraints
   (eqs. (21)–(23)), port network wiring, and optionally prints the Gantt
   charts and the eq. (23)/(25) derivations of every table. This is the
   "offline tools that verify the fulfilment of the timing requirements"
   of paper Sect. 5. *)

open Cmdliner
open Air_model

let report_of cfg =
  let partitions =
    List.map
      (fun (s : Air.System.partition_setup) -> s.Air.System.partition)
      cfg.Air.System.partitions
  in
  Air_analysis.Report.build partitions cfg.Air.System.schedules

let validate_file path show_gantt explain report =
  match Air_config.Loader.load_file path with
  | Error e ->
    Format.eprintf "%s: %s@." path e;
    1
  | Ok cfg ->
    let schedules = cfg.Air.System.schedules in
    let diags = Validate.validate_set schedules in
    let port_diags = Air_ipc.Port.validate cfg.Air.System.network in
    List.iter
      (fun d -> Format.printf "schedule: %a@." Validate.pp_diagnostic d)
      diags;
    List.iter (fun d -> Format.printf "ports: %s@." d) port_diags;
    if show_gantt then
      List.iter (fun s -> print_string (Air_vitral.Gantt.of_schedule s)) schedules;
    if explain then
      List.iter
        (fun (s : Schedule.t) ->
          List.iter
            (fun (r : Schedule.requirement) ->
              if r.Schedule.duration > 0 && s.Schedule.mtf mod r.Schedule.cycle = 0
              then
                for k = 0 to (s.Schedule.mtf / r.Schedule.cycle) - 1 do
                  Format.printf "%t@." (fun ppf ->
                      Validate.explain_requirement ppf s r.Schedule.partition
                        ~k)
                done)
            s.Schedule.requirements)
        schedules;
    if report then Format.printf "%a" Air_analysis.Report.pp (report_of cfg);
    if diags = [] && port_diags = [] then begin
      Format.printf
        "%s: valid — %d partitions, %d schedules, %d ports@." path
        (List.length cfg.Air.System.partitions)
        (List.length schedules)
        (List.length cfg.Air.System.network.Air_ipc.Port.ports);
      0
    end
    else 1

let path_arg =
  let doc = "Configuration document (.air) to validate." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG" ~doc)

let gantt_flag =
  let doc = "Print a Gantt chart of every schedule." in
  Arg.(value & flag & info [ "g"; "gantt" ] ~doc)

let explain_flag =
  let doc =
    "Print the eq. (23) derivation for every partition and cycle (the \
     paper's eq. (25))."
  in
  Arg.(value & flag & info [ "e"; "explain" ] ~doc)

let report_flag =
  let doc =
    "Print the full integration report: supply characteristics and \
     response-time verdicts for every process under every schedule."
  in
  Arg.(value & flag & info [ "r"; "report" ] ~doc)

let cmd =
  let doc = "validate an AIR integration configuration" in
  Cmd.v
    (Cmd.info "air_validate" ~doc)
    Term.(const validate_file $ path_arg $ gantt_flag $ explain_flag
          $ report_flag)

let () = exit (Cmd.eval' cmd)
