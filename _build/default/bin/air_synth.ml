(* air_synth — automated generation of a partition scheduling table from
   per-partition timing requirements (paper Sect. 1: "automated aids to the
   definition of system parameters").

   Each requirement is NAME:CYCLE:DURATION; the tool builds an
   earliest-fit PST over the lcm of the cycles (or a requested MTF),
   validates it against eqs. (21)–(23), and prints the table, its Gantt
   chart and the per-cycle derivations. *)

open Cmdliner
open Air_model

let parse_requirement index spec =
  match String.split_on_char ':' spec with
  | [ name; cycle; duration ] -> (
    match (int_of_string_opt cycle, int_of_string_opt duration) with
    | Some cycle, Some duration ->
      Ok
        ( name,
          { Schedule.partition = Ident.Partition_id.make index;
            cycle;
            duration } )
    | _ -> Error (Printf.sprintf "bad numbers in %S" spec))
  | _ -> Error (Printf.sprintf "expected NAME:CYCLE:DURATION, got %S" spec)

let synth specs mtf explain =
  let parsed = List.mapi parse_requirement specs in
  match
    List.fold_right
      (fun r acc ->
        match (r, acc) with
        | Ok x, Ok xs -> Ok (x :: xs)
        | Error e, _ -> Error e
        | _, (Error _ as e) -> e)
      parsed (Ok [])
  with
  | Error e ->
    prerr_endline e;
    1
  | Ok named ->
    let requirements = List.map snd named in
    (match Air_analysis.Synthesis.synthesize ?mtf requirements with
    | Error f ->
      Format.eprintf "synthesis failed: %a@." Air_analysis.Synthesis.pp_failure f;
      1
    | Ok schedule ->
      Format.printf "legend:@.";
      List.iteri
        (fun i (name, _) ->
          Format.printf "  %a = %s@." Ident.Partition_id.pp
            (Ident.Partition_id.make i) name)
        named;
      Format.printf "%a@." Schedule.pp schedule;
      print_string (Air_vitral.Gantt.of_schedule schedule);
      (match Validate.validate schedule with
      | [] -> Format.printf "validation: eqs. (21)-(23) hold@."
      | ds ->
        List.iter
          (fun d -> Format.printf "DIAGNOSTIC: %a@." Validate.pp_diagnostic d)
          ds);
      if explain then
        List.iter
          (fun (r : Schedule.requirement) ->
            if r.Schedule.duration > 0 then
              for k = 0 to (schedule.Schedule.mtf / r.Schedule.cycle) - 1 do
                Format.printf "%t@." (fun ppf ->
                    Validate.explain_requirement ppf schedule
                      r.Schedule.partition ~k)
              done)
          requirements;
      0)

let specs_arg =
  let doc = "Requirements, each NAME:CYCLE:DURATION (ticks)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"REQ" ~doc)

let mtf_arg =
  let doc =
    "Major time frame (rounded up to a multiple of the cycles' lcm); \
     defaults to the lcm itself."
  in
  Arg.(value & opt (some int) None & info [ "m"; "mtf" ] ~doc)

let explain_flag =
  let doc = "Print the eq. (23) derivation for every cycle." in
  Arg.(value & flag & info [ "e"; "explain" ] ~doc)

let cmd =
  let doc = "synthesize a partition scheduling table from requirements" in
  Cmd.v
    (Cmd.info "air_synth" ~doc)
    Term.(const synth $ specs_arg $ mtf_arg $ explain_flag)

let () = exit (Cmd.eval' cmd)
