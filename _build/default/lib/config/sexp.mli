(** S-expressions — the configuration syntax.

    ARINC 653 systems are configured through integration-time documents
    (XML in the standard); this repository uses s-expressions to stay free
    of external dependencies. Atoms are bare words or double-quoted strings
    with backslash escapes for quote, backslash, newline and tab; comments
    run from [;] to end of line. *)

type t = Atom of string | List of t list

type position = { line : int; column : int }

type error = { message : string; position : position }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (t list, error) result
(** All toplevel expressions in the input. *)

val parse_one : string -> (t, error) result
(** Exactly one toplevel expression (surrounding whitespace allowed). *)

val parse_file : string -> (t list, error) result
(** Reads and parses a file; I/O failures are reported as a parse error at
    line 0. *)

val pp : Format.formatter -> t -> unit
(** Prints a parseable rendering (atoms are quoted when needed). *)

val to_string : t -> string

val atom : t -> string option
val list : t -> t list option
