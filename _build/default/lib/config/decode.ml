type 'a t = ('a, string) result

let ( let* ) = Result.bind

let error fmt = Format.kasprintf (fun s -> Error s) fmt

let map_all f items =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match f x with
      | Ok y -> go (y :: acc) rest
      | Error _ as e -> e)
  in
  go [] items

let tagged tag = function
  | Sexp.List (Sexp.Atom a :: rest) when String.equal a tag -> Ok rest
  | s -> error "expected (%s …), got %s" tag (Sexp.to_string s)

let tag_of = function
  | Sexp.List (Sexp.Atom a :: rest) -> Ok (a, rest)
  | s -> error "expected a tagged form, got %s" (Sexp.to_string s)

type fields = {
  context : string;
  entries : (string * Sexp.t list) list;
}

let fields_of ~context items =
  let* entries =
    map_all
      (fun item ->
        let* tag, rest = tag_of item in
        Ok (tag, rest))
      items
  in
  let rec dup_check seen = function
    | [] -> Ok ()
    | (name, _) :: rest ->
      if List.mem name seen then
        error "%s: duplicate field %s" context name
      else dup_check (name :: seen) rest
  in
  let* () = dup_check [] entries in
  Ok { context; entries }

let required f name decode =
  match List.assoc_opt name f.entries with
  | Some args -> (
    match decode args with
    | Ok v -> Ok v
    | Error e -> error "%s.%s: %s" f.context name e)
  | None -> error "%s: missing field %s" f.context name

let optional f name decode =
  match List.assoc_opt name f.entries with
  | None -> Ok None
  | Some args -> (
    match decode args with
    | Ok v -> Ok (Some v)
    | Error e -> error "%s.%s: %s" f.context name e)

let with_default f name decode default =
  let* v = optional f name decode in
  Ok (Option.value ~default v)

let rest_of f name = Option.value ~default:[] (List.assoc_opt name f.entries)

let assert_no_extra f ~known =
  let rec go = function
    | [] -> Ok ()
    | (name, _) :: rest ->
      if List.mem name known then go rest
      else error "%s: unknown field %s" f.context name
  in
  go f.entries

let one decode = function
  | [ x ] -> decode x
  | args -> error "expected one value, got %d" (List.length args)

let many decode args = map_all decode args

let atom = function
  | Sexp.Atom a -> Ok a
  | Sexp.List _ as s -> error "expected an atom, got %s" (Sexp.to_string s)

let int s =
  let* a = atom s in
  match int_of_string_opt a with
  | Some n -> Ok n
  | None -> error "expected an integer, got %s" a

let bool s =
  let* a = atom s in
  match a with
  | "true" | "yes" -> Ok true
  | "false" | "no" -> Ok false
  | _ -> error "expected a boolean, got %s" a

let time s =
  let* a = atom s in
  match a with
  | "infinite" | "infinity" -> Ok Air_sim.Time.infinity
  | _ -> (
    match int_of_string_opt a with
    | Some n when n >= 0 -> Ok n
    | Some _ -> error "negative tick count %s" a
    | None -> error "expected ticks or 'infinite', got %s" a)

let timeout s =
  match atom s with
  | Ok "poll" -> Ok Air_sim.Time.zero
  | _ -> time s
