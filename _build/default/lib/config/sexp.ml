type t = Atom of string | List of t list

type position = { line : int; column : int }

type error = { message : string; position : position }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.position.line
    e.position.column e.message

exception Parse_error of error

type lexer = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable column : int;
}

let make_lexer input = { input; pos = 0; line = 1; column = 1 }

let position lx = { line = lx.line; column = lx.column }

let fail lx message = raise (Parse_error { message; position = position lx })

let peek lx =
  if lx.pos >= String.length lx.input then None else Some lx.input.[lx.pos]

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.column <- 1
  | Some _ -> lx.column <- lx.column + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_blanks lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_blanks lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_blanks lx
  | Some _ | None -> ()

let is_atom_char = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
  | _ -> true

let lex_quoted lx =
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> fail lx "unterminated string"
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some 'n' -> Buffer.add_char buf '\n'; advance lx; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance lx; go ()
      | Some '"' -> Buffer.add_char buf '"'; advance lx; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance lx; go ()
      | Some c -> fail lx (Printf.sprintf "bad escape \\%c" c)
      | None -> fail lx "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      go ()
  in
  go ();
  Buffer.contents buf

let lex_bare lx =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | Some c when is_atom_char c ->
      Buffer.add_char buf c;
      advance lx;
      go ()
    | Some _ | None -> ()
  in
  go ();
  Buffer.contents buf

let rec parse_expr lx =
  skip_blanks lx;
  match peek lx with
  | None -> fail lx "unexpected end of input"
  | Some '(' ->
    advance lx;
    let rec elements acc =
      skip_blanks lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        List (List.rev acc)
      | None -> fail lx "unclosed parenthesis"
      | Some _ -> elements (parse_expr lx :: acc)
    in
    elements []
  | Some ')' -> fail lx "unexpected closing parenthesis"
  | Some '"' -> Atom (lex_quoted lx)
  | Some _ ->
    let a = lex_bare lx in
    if String.equal a "" then fail lx "empty atom" else Atom a

let parse input =
  let lx = make_lexer input in
  let rec all acc =
    skip_blanks lx;
    match peek lx with
    | None -> List.rev acc
    | Some _ -> all (parse_expr lx :: acc)
  in
  match all [] with
  | exprs -> Ok exprs
  | exception Parse_error e -> Error e

let parse_one input =
  let lx = make_lexer input in
  match
    let e = parse_expr lx in
    skip_blanks lx;
    match peek lx with
    | None -> e
    | Some _ -> fail lx "trailing input after expression"
  with
  | e -> Ok e
  | exception Parse_error e -> Error e

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error message ->
    Error { message; position = { line = 0; column = 0 } }

let needs_quoting s =
  String.equal s "" || String.exists (fun c -> not (is_atom_char c)) s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec pp ppf = function
  | Atom a ->
    Format.pp_print_string ppf (if needs_quoting a then quote a else a)
  | List items ->
    Format.fprintf ppf "@[<hov 1>(%a)@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      items

let to_string t = Format.asprintf "%a" pp t

let atom = function Atom a -> Some a | List _ -> None
let list = function List l -> Some l | Atom _ -> None
