(** Decoding combinators over {!Sexp.t} record forms.

    A "record form" is [(tag (field value…) (field value…))]; fields are
    looked up by name, duplicated fields are an error, and every decoder
    failure carries the path at which it occurred. *)

type 'a t = ('a, string) result

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val error : ('a, Format.formatter, unit, 'b t) format4 -> 'a
val map_all : ('a -> 'b t) -> 'a list -> 'b list t
(** Decode every element, failing on the first error. *)

val tagged : string -> Sexp.t -> Sexp.t list t
(** [(tag rest…)] → [rest]. *)

val tag_of : Sexp.t -> (string * Sexp.t list) t
(** Any [(tag rest…)] form. *)

type fields

val fields_of : context:string -> Sexp.t list -> fields t
(** Each element must be [(name value…)]; duplicate names rejected. *)

val required : fields -> string -> (Sexp.t list -> 'a t) -> 'a t
val optional : fields -> string -> (Sexp.t list -> 'a t) -> 'a option t
val with_default : fields -> string -> (Sexp.t list -> 'a t) -> 'a -> 'a t
val rest_of : fields -> string -> Sexp.t list
(** Raw arguments of a field, or the empty list when absent. *)

val assert_no_extra : fields -> known:string list -> unit t

(** {1 Value decoders (over a field's argument list)} *)

val one : (Sexp.t -> 'a t) -> Sexp.t list -> 'a t
val many : (Sexp.t -> 'a t) -> Sexp.t list -> 'a list t
val atom : Sexp.t -> string t
val int : Sexp.t -> int t
val bool : Sexp.t -> bool t
val time : Sexp.t -> Air_sim.Time.t t
(** An integer tick count, or the atom [infinite]. *)

val timeout : Sexp.t -> Air_sim.Time.t t
(** Like {!time}, also accepting [poll] for 0. *)
