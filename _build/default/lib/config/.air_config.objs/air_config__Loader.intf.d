lib/config/loader.mli: Air Sexp
