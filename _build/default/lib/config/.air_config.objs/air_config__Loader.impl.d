lib/config/loader.ml: Air Air_ipc Air_model Air_pos Air_sim Decode Error Filename Format Ident Kernel List Partition Port Process Schedule Script Sexp String Time
