lib/config/decode.ml: Air_sim Format List Option Result Sexp String
