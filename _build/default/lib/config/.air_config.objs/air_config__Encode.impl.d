lib/config/encode.ml: Air Air_ipc Air_model Air_pos Air_sim Array Error Format Ident Intra Kernel List Partition Port Process Schedule Script Sexp Time
