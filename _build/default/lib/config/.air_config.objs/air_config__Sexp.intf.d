lib/config/sexp.mli: Format
