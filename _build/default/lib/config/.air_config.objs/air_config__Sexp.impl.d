lib/config/sexp.ml: Buffer Format In_channel List Printf String
