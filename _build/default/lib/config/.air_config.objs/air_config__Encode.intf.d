lib/config/encode.mli: Air Sexp
