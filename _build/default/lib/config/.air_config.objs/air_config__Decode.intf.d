lib/config/decode.mli: Air_sim Format Sexp
