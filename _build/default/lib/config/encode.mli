(** Rendering a system configuration back into the configuration language.

    The inverse of {!Loader}: given an [Air.System.config], produce an
    [(air-system …)] document that {!Loader.load} accepts and that decodes
    to an equivalent configuration. Used by integration tooling (dumping a
    programmatically built system for review) and by the round-trip
    property tests. *)

val encode : Air.System.config -> Sexp.t
(** Raises [Invalid_argument] if the configuration cannot be expressed in
    the language (it always can for configurations produced by
    {!Loader.load} or built from the public constructors). *)

val to_string : Air.System.config -> string
(** [Sexp.to_string] of {!encode}. *)
