lib/ipc/port.ml: Air_model Air_sim Format Hashtbl List Partition_id Port_name Time
