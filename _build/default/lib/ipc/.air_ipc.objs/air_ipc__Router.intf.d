lib/ipc/router.mli: Air_model Air_sim Format Partition_id Port Port_name Time
