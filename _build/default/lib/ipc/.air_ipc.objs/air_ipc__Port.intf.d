lib/ipc/port.mli: Air_model Air_sim Format Partition_id Port_name Time
