lib/ipc/router.ml: Air_model Air_sim Bytes Format Hashtbl List Option Partition_id Port Port_name Queue Result Time
