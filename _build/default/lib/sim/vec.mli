(** Growable arrays.

    OCaml 5.1 predates [Dynarray]; this is the small subset the simulator
    needs (append-only logs, work lists). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Amortized O(1) append. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val last : 'a t -> 'a option

val pop_last : 'a t -> 'a option
(** Removes and returns the last element, O(1). *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val filter : ('a -> bool) -> 'a t -> 'a list

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t
