lib/sim/rng.mli:
