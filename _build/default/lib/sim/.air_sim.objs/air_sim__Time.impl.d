lib/sim/time.ml: Format Int List Stdlib
