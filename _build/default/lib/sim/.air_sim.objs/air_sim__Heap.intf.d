lib/sim/heap.mli:
