lib/sim/vec.mli:
