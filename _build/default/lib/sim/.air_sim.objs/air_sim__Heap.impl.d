lib/sim/heap.ml: List Vec
