type 'a t = {
  capacity : int option;
  items : (Time.t * 'a) Queue.t;
  mutable total : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | _ -> ());
  { capacity; items = Queue.create (); total = 0 }

let record t time ev =
  Queue.push (time, ev) t.items;
  t.total <- t.total + 1;
  match t.capacity with
  | Some c when Queue.length t.items > c -> ignore (Queue.pop t.items)
  | _ -> ()

let length t = Queue.length t.items
let total t = t.total

let to_list t = List.of_seq (Queue.to_seq t.items)

let events t = List.map snd (to_list t)

let iter f t = Queue.iter (fun (time, ev) -> f time ev) t.items

let filter p t =
  List.filter (fun (time, ev) -> p time ev) (to_list t)

let between t from until =
  filter (fun time _ -> Time.(from <= time) && Time.(time < until)) t

let count p t =
  Queue.fold (fun acc (_, ev) -> if p ev then acc + 1 else acc) 0 t.items

let find_first p t =
  Queue.fold
    (fun acc entry ->
      match acc with
      | Some _ -> acc
      | None -> if p (snd entry) then Some entry else None)
    None t.items

let find_last p t =
  Queue.fold
    (fun acc entry -> if p (snd entry) then Some entry else acc)
    None t.items

let clear t = Queue.clear t.items

let pp pp_ev ppf t =
  iter (fun time ev -> Format.fprintf ppf "[%a] %a@." Time.pp time pp_ev ev) t
