type t = int

let zero = 0
let infinity = max_int
let is_infinite t = t = max_int

let of_int n =
  if n < 0 then invalid_arg "Time.of_int: negative tick count" else n

let add a b =
  if is_infinite a || is_infinite b then infinity
  else
    let s = a + b in
    if s < 0 then invalid_arg "Time.add: overflow" else s

let sub a b =
  if is_infinite a then infinity
  else if b >= a then 0
  else a - b

let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = a <= b
let ( < ) (a : t) (b : t) = a < b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b =
  if a <= 0 || b <= 0 then invalid_arg "Time.lcm: non-positive duration"
  else if is_infinite a || is_infinite b then
    invalid_arg "Time.lcm: infinite duration"
  else
    let g = gcd a b in
    let l = a / g * b in
    if l < 0 then invalid_arg "Time.lcm: overflow" else l

let lcm_list = function
  | [] -> invalid_arg "Time.lcm_list: empty list"
  | d :: ds -> List.fold_left lcm d ds

let pp ppf t = if is_infinite t then Format.pp_print_string ppf "∞"
  else Format.pp_print_int ppf t

let to_string t = Format.asprintf "%a" pp t
