(* Splitmix64: fast, high-quality, and trivially splittable; the reference
   constants are from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let r = v mod n in
    if v - r + (n - 1) < 0 then draw () else r
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 uniform bits scaled into [0, 1). *)
  v /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: non-positive mean";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let log_uniform t lo hi =
  if lo <= 0 || hi < lo then invalid_arg "Rng.log_uniform: bad range";
  let llo = log (Stdlib.float_of_int lo)
  and lhi = log (Stdlib.float_of_int (hi + 1)) in
  let v = exp (llo +. float t (lhi -. llo)) in
  Stdlib.min hi (Stdlib.max lo (int_of_float v))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let uunifast t n u =
  if n <= 0 then invalid_arg "Rng.uunifast: need at least one task";
  let utils = Array.make n 0.0 in
  let sum = ref u in
  for i = 0 to n - 2 do
    let next = !sum *. (float t 1.0 ** (1.0 /. Stdlib.float_of_int (n - 1 - i))) in
    utils.(i) <- !sum -. next;
    sum := next
  done;
  utils.(n - 1) <- !sum;
  utils
