(** Simulated time, measured in integer clock ticks.

    The AIR Partition Management Kernel executes at every system clock tick
    (paper, Sect. 4.3); all temporal quantities of the system model — major
    time frames, window offsets and durations, process periods, deadlines and
    capacities — are therefore expressed as tick counts. *)

type t = int
(** A point in time or a duration, in clock ticks. Always non-negative for
    points in time; durations used by the model are strictly positive unless
    stated otherwise. *)

val zero : t

val infinity : t
(** Sentinel for "no deadline" ([D = ∞] in eq. (11) of the paper). Compares
    greater than every attainable tick count. *)

val is_infinite : t -> bool

val add : t -> t -> t
(** Saturating addition: [add t d] is {!infinity} whenever either argument is
    infinite. Raises [Invalid_argument] on overflow of finite values. *)

val sub : t -> t -> t
(** [sub t d] clamps at {!zero}; an infinite minuend stays infinite. *)

val of_int : int -> t
(** Identity with a bounds check: negative values are rejected with
    [Invalid_argument]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val lcm : t -> t -> t
(** Least common multiple of two strictly positive durations, used by the
    MTF constraint of eq. (22). Raises [Invalid_argument] on non-positive
    arguments or if either argument is infinite. *)

val lcm_list : t list -> t
(** [lcm_list ds] folds {!lcm} over [ds]. Raises [Invalid_argument] on the
    empty list. *)

val pp : Format.formatter -> t -> unit
(** Prints ["∞"] for {!infinity} and the tick count otherwise. *)

val to_string : t -> string
