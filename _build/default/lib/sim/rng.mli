(** Deterministic pseudo-random number generation (splitmix64).

    Every synthetic workload in the repository draws from an explicit [Rng.t]
    so that experiments are bit-reproducible across runs and machines; the
    global [Stdlib.Random] state is never used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds yield
    equal streams. *)

val copy : t -> t
(** Independent duplicate of the current state. *)

val split : t -> t
(** Derives a new generator whose stream is statistically independent of the
    parent's subsequent output. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int rng n] is uniform over [0, n-1]. Raises [Invalid_argument] if
    [n <= 0]. Unbiased (rejection sampling). *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform over the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float rng x] is uniform over [0, x). *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential rng mean] draws from an exponential distribution with the
    given mean (inter-arrival times of sporadic activations). *)

val log_uniform : t -> int -> int -> int
(** [log_uniform rng lo hi] draws an integer whose logarithm is uniform over
    [log lo, log hi] — the conventional way of drawing task periods spanning
    several orders of magnitude. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on an empty array. *)

val uunifast : t -> int -> float -> float array
(** [uunifast rng n u] generates [n] task utilizations summing to [u] with
    the UUniFast algorithm (Bini & Buttazzo), used by the synthetic workload
    generators of experiment E8/E11. *)
