type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  (* The dummy slots beyond [len] hold the pushed value until overwritten;
     they are never observed through the API. *)
  let data' = Array.make cap' t.data.(0) in
  Array.blit t.data 0 data' 0 t.len;
  t.data <- data'

let push t x =
  if t.len = Array.length t.data then
    if t.len = 0 then t.data <- Array.make 8 x else grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i = check t i; t.data.(i)

let set t i x = check t i; t.data.(i) <- x

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let pop_last t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let clear t = t.len <- 0

let iter f t = for i = 0 to t.len - 1 do f t.data.(i) done

let iteri f t = for i = 0 to t.len - 1 do f i t.data.(i) done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do acc := f !acc t.data.(i) done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let filter p t =
  List.rev (fold_left (fun acc x -> if p x then x :: acc else acc) [] t)

let to_list t = List.rev (fold_left (fun acc x -> x :: acc) [] t)

let to_array t = Array.init t.len (fun i -> t.data.(i))

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t
