(** Text-mode windows, after VITRAL (paper Sect. 6, Fig. 9).

    The prototype uses VITRAL, a text-mode window manager for RTEMS, with
    one window per partition showing its output and further windows
    observing AIR components. Here a window is a titled, bounded scrollback
    of text lines rendered with box-drawing characters; a console lays
    windows out in rows. *)

type t

val create : ?height:int -> title:string -> width:int -> unit -> t
(** [height] is the number of content lines kept and shown (default 8);
    older lines scroll away. [width] is the inner content width. *)

val title : t -> string

val push : t -> string -> unit
(** Append one line (truncated to the window width). *)

val push_fmt : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val clear : t -> unit

val lines : t -> string list

val render : t -> string list
(** Boxed: top border with the title, [height] content lines, bottom
    border. Every line has the same display width. *)

val render_row : t list -> string
(** Windows of equal height laid out side by side, separated by one space;
    windows of differing heights are padded at the bottom. *)

val render_grid : columns:int -> t list -> string
(** Lay windows out in rows of [columns]. *)
