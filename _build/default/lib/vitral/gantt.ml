open Air_sim
open Air_model
open Ident

(* Who owns each tick of [0, horizon) according to a context-switch
   history ((tick, owner) pairs, oldest first). *)
let owners_of_activity ~from ~until switches =
  let horizon = until - from in
  let owners = Array.make (Stdlib.max 0 horizon) None in
  let rec fill current = function
    | [] ->
      (* The last owner holds until the end of the interval. *)
      ()
    | (t, owner) :: rest ->
      let t = Stdlib.max t from in
      if t < until then begin
        ignore current;
        let stop =
          match rest with
          | (t', _) :: _ -> Stdlib.min until t'
          | [] -> until
        in
        for i = Stdlib.max t from to stop - 1 do
          if i >= from then owners.(i - from) <- owner
        done
      end;
      fill owner rest
  in
  (* Seed: owner before [from] is the last switch at or before it. *)
  let before, after =
    List.partition (fun (t, _) -> t <= from) switches
  in
  let initial =
    match List.rev before with (_, owner) :: _ -> owner | [] -> None
  in
  (match after with
  | (t0, _) :: _ ->
    for i = from to Stdlib.min until t0 - 1 do
      owners.(i - from) <- initial
    done
  | [] ->
    for i = from to until - 1 do
      owners.(i - from) <- initial
    done);
  fill initial after;
  owners

let occupancy ~partitions ~from ~until switches =
  let owners = owners_of_activity ~from ~until switches in
  let count target =
    Array.fold_left
      (fun acc owner ->
        match (owner, target) with
        | None, None -> acc + 1
        | Some p, Some q when Partition_id.equal p q -> acc + 1
        | _ -> acc)
      0 owners
  in
  List.map (fun p -> (Some p, count (Some p))) partitions
  @ [ (None, count None) ]

let render_rows ~width ~labels ~horizon cell_owner =
  let buf = Buffer.create 1024 in
  let ticks_per_cell =
    Stdlib.max 1 ((horizon + width - 1) / width)
  in
  let cells = (horizon + ticks_per_cell - 1) / ticks_per_cell in
  (* Ruler. *)
  Buffer.add_string buf (Printf.sprintf "%8s " "");
  for c = 0 to cells - 1 do
    Buffer.add_char buf (if c mod 10 = 0 then '|' else ' ')
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%8s " ("1c=" ^ string_of_int ticks_per_cell));
  for c = 0 to cells - 1 do
    if c mod 10 = 0 then
      Buffer.add_string buf
        (let s = string_of_int (c * ticks_per_cell) in
         String.sub s 0 (Stdlib.min (String.length s) 1))
    else Buffer.add_char buf ' '
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, matches) ->
      Buffer.add_string buf (Printf.sprintf "%8s " label);
      for c = 0 to cells - 1 do
        let lo = c * ticks_per_cell in
        let hi = Stdlib.min horizon (lo + ticks_per_cell) in
        let held = ref 0 in
        for tk = lo to hi - 1 do
          if matches (cell_owner tk) then incr held
        done;
        let span = hi - lo in
        Buffer.add_string buf
          (if !held = 0 then "·"
           else if 2 * !held >= span then "█"
           else "▒")
      done;
      Buffer.add_char buf '\n')
    labels;
  Buffer.contents buf

let of_schedule ?(width = 65) (s : Schedule.t) =
  let partitions = Schedule.partitions s in
  let owner tick =
    Option.map
      (fun (w : Schedule.window) -> w.partition)
      (Schedule.window_at s tick)
  in
  let labels =
    List.map
      (fun p ->
        ( Format.asprintf "%a" Partition_id.pp p,
          fun o ->
            match o with
            | Some q -> Partition_id.equal p q
            | None -> false ))
      partitions
  in
  let chart =
    render_rows ~width ~labels ~horizon:s.Schedule.mtf owner
  in
  let windows =
    String.concat "\n"
      (List.map
         (fun p ->
           Format.asprintf "  %a: %a" Partition_id.pp p
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
                Schedule.pp_window)
             (Schedule.windows_of s p))
         partitions)
  in
  Format.asprintf "%a %s — MTF=%a@.%s%s@." Schedule_id.pp s.Schedule.id
    s.Schedule.name Time.pp s.Schedule.mtf chart windows

let of_activity ?(width = 65) ~partitions ~from ~until switches =
  let owners = owners_of_activity ~from ~until switches in
  let owner tick = owners.(tick) in
  let labels =
    List.map
      (fun p ->
        ( Format.asprintf "%a" Partition_id.pp p,
          fun o ->
            match o with
            | Some q -> Partition_id.equal p q
            | None -> false ))
      partitions
    @ [ ("idle", fun o -> o = None) ]
  in
  render_rows ~width ~labels ~horizon:(until - from) owner
