(** Text Gantt charts of partition schedules and execution traces.

    Renders Fig. 8's scheduling tables and the observed processor
    occupation of a run as one row per partition over a scaled time axis. *)

open Air_sim
open Air_model
open Ident

val of_schedule : ?width:int -> Schedule.t -> string
(** Static chart of the PST's windows over one MTF ([width] columns,
    default 65). A cell is filled ("█") when the partition holds the
    majority of the cell's tick range, half-filled ("▒") when it holds part
    of it. Includes an offset ruler and per-partition window lists. *)

val of_activity :
  ?width:int ->
  partitions:Partition_id.t list ->
  from:Time.t ->
  until:Time.t ->
  (Time.t * Partition_id.t option) list ->
  string
(** Chart of observed context switches (as produced by
    [Air.System.activity]) over [\[from, until)]. *)

val occupancy :
  partitions:Partition_id.t list ->
  from:Time.t ->
  until:Time.t ->
  (Time.t * Partition_id.t option) list ->
  (Partition_id.t option * Time.t) list
(** Ticks held by each partition (and the idle share, keyed [None]) in the
    interval, reconstructed from the context-switch history. *)
