(** The VITRAL console (paper Fig. 9).

    The prototype shows "one window for each partition, where its output
    can be seen, and also two more windows which allow observation of the
    behaviour of AIR components". A console builds exactly that layout and
    routes trace events to the right window: application output to its
    partition's window, scheduler activity (switch requests, switches,
    change actions) to the PMK window, and errors, violations and recovery
    actions to the Health Monitor window. *)

open Air_model
open Ident

type t

val create :
  ?window_width:int ->
  ?window_height:int ->
  partitions:(Partition_id.t * string) list ->
  unit ->
  t
(** One window per partition (titled with the given label) plus the
    "AIR PMK" and "AIR Health Monitor" windows. *)

val feed : t -> Air_sim.Time.t -> Event.t -> unit
(** Route one event. Events with no window (process state changes, port
    traffic, memory grants) are ignored. *)

val feed_trace : t -> Event.t Air_sim.Trace.t -> unit
(** {!feed} every event of a trace, oldest first. *)

val render : ?columns:int -> t -> string
(** The full console: partition windows first, then the AIR windows, laid
    out in [columns] (default 2). *)
