lib/vitral/window.mli: Format
