lib/vitral/console.ml: Air_model Air_sim Event Ident List Option Partition_id Window
