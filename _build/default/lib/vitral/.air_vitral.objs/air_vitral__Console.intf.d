lib/vitral/console.mli: Air_model Air_sim Event Ident Partition_id
