lib/vitral/gantt.ml: Air_model Air_sim Array Buffer Format Ident List Option Partition_id Printf Schedule Schedule_id Stdlib String Time
