lib/vitral/window.ml: Char Format List Queue Stdlib String
