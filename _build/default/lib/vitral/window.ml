(* Content lines may contain multi-byte UTF-8 (τ, χ, →); rendering pads by
   codepoint count, approximating one display column per codepoint. *)

let utf8_length s =
  let n = String.length s in
  let rec go i count =
    if i >= n then count
    else begin
      let c = Char.code s.[i] in
      let step =
        if c < 0x80 then 1
        else if c < 0xE0 then 2
        else if c < 0xF0 then 3
        else 4
      in
      go (i + step) (count + 1)
    end
  in
  go 0 0

let utf8_truncate s width =
  let n = String.length s in
  let rec go i count =
    if i >= n || count >= width then i
    else begin
      let c = Char.code s.[i] in
      let step =
        if c < 0x80 then 1
        else if c < 0xE0 then 2
        else if c < 0xF0 then 3
        else 4
      in
      go (i + step) (count + 1)
    end
  in
  String.sub s 0 (go 0 0)

let pad s width =
  let len = utf8_length s in
  if len >= width then utf8_truncate s width
  else s ^ String.make (width - len) ' '

type t = {
  title : string;
  width : int;
  height : int;
  content : string Queue.t;
}

let create ?(height = 8) ~title ~width () =
  if width <= 0 || height <= 0 then
    invalid_arg "Window.create: non-positive dimensions";
  { title; width; height; content = Queue.create () }

let title t = t.title

let push t line =
  Queue.push (utf8_truncate line t.width) t.content;
  if Queue.length t.content > t.height then ignore (Queue.pop t.content)

let push_fmt t fmt = Format.kasprintf (push t) fmt

let clear t = Queue.clear t.content

let lines t = List.of_seq (Queue.to_seq t.content)

let render t =
  let dashes n = String.concat "" (List.init n (fun _ -> "─")) in
  let header =
    let label = utf8_truncate t.title (t.width - 2) in
    let used = utf8_length label + 2 in
    "┌─" ^ label ^ dashes (t.width - used + 1) ^ "┐"
  in
  let footer = "└" ^ dashes t.width ^ "┘" in
  let body = lines t in
  let padded =
    body @ List.init (Stdlib.max 0 (t.height - List.length body)) (fun _ -> "")
  in
  header
  :: List.map (fun line -> "│" ^ pad line t.width ^ "│") padded
  @ [ footer ]

let render_row windows =
  let rendered = List.map render windows in
  let height =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 rendered
  in
  let blank_for w = String.make (w.width + 2) ' ' in
  let row i =
    String.concat " "
      (List.map2
         (fun w r ->
           match List.nth_opt r i with
           | Some line -> line
           | None -> blank_for w)
         windows rendered)
  in
  String.concat "\n" (List.init height row)

let render_grid ~columns windows =
  if columns <= 0 then invalid_arg "Window.render_grid: no columns";
  let rec rows acc = function
    | [] -> List.rev acc
    | ws ->
      let rec take n = function
        | x :: rest when n > 0 ->
          let taken, remaining = take (n - 1) rest in
          (x :: taken, remaining)
        | rest -> ([], rest)
      in
      let row, rest = take columns ws in
      rows (render_row row :: acc) rest
  in
  String.concat "\n" (rows [] windows)
