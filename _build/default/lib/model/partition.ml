type mode = Normal | Idle | Cold_start | Warm_start

let mode_equal a b =
  match (a, b) with
  | Normal, Normal | Idle, Idle | Cold_start, Cold_start
  | Warm_start, Warm_start ->
    true
  | (Normal | Idle | Cold_start | Warm_start), _ -> false

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Normal -> "normal"
    | Idle -> "idle"
    | Cold_start -> "coldStart"
    | Warm_start -> "warmStart")

type kind = Application | System

let kind_equal a b =
  match (a, b) with
  | Application, Application | System, System -> true
  | (Application | System), _ -> false

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Application -> "application" | System -> "system")

type t = {
  id : Ident.Partition_id.t;
  name : string;
  kind : kind;
  processes : Process.spec array;
  initial_mode : mode;
}

let make ?(kind = Application) ?(initial_mode = Cold_start) ~id ~name
    processes =
  { id; name; kind; processes = Array.of_list processes; initial_mode }

let process_count t = Array.length t.processes

let process_id t q =
  if q < 0 || q >= Array.length t.processes then
    invalid_arg "Partition.process_id: index out of range";
  Ident.Process_id.make t.id q

let find_process t name =
  let rec go q =
    if q >= Array.length t.processes then None
    else if String.equal t.processes.(q).Process.name name then
      Some (q, t.processes.(q))
    else go (q + 1)
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "%a (%s, %a, %d processes)" Ident.Partition_id.pp t.id
    t.name pp_kind t.kind (Array.length t.processes)
