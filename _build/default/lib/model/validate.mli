(** Offline verification of integrator-defined system parameters.

    Checks the constraints the paper states on partition scheduling tables:

    - eq. (21): windows do not intersect and are fully contained in the MTF;
    - eq. (22): MTF_i is a multiple of the lcm of the partitions' cycles;
    - eq. (23): within every cycle a partition completes inside the MTF, its
      windows provide at least the assigned duration d (the fundamental
      timing-requirement fulfilment condition — it implies eq. (8)).

    Plus the structural conditions implicit in eqs. (18)–(20): window
    partitions belong to Q_i, requirements are unique, cycles are positive
    and divide the MTF. *)

open Air_sim
open Ident

type diagnostic =
  | Empty_requirements of { schedule : Schedule_id.t }
  | Duplicate_requirement of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
    }
  | Nonpositive_cycle of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      cycle : Time.t;
    }
  | Duration_exceeds_cycle of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      duration : Time.t;
      cycle : Time.t;
    }
  | Window_overlap of {
      schedule : Schedule_id.t;
      first : Schedule.window;
      second : Schedule.window;
    }  (** Violates the first part of eq. (21). *)
  | Window_exceeds_mtf of {
      schedule : Schedule_id.t;
      window : Schedule.window;
      mtf : Time.t;
    }  (** Violates the second part of eq. (21). *)
  | Window_for_unknown_partition of {
      schedule : Schedule_id.t;
      window : Schedule.window;
    }  (** Violates P^ω ∈ Q_i of eq. (20). *)
  | Mtf_not_multiple_of_lcm of {
      schedule : Schedule_id.t;
      mtf : Time.t;
      lcm : Time.t;
    }  (** Violates eq. (22). *)
  | Cycle_not_dividing_mtf of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      cycle : Time.t;
      mtf : Time.t;
    }
      (** MTF_i/η must be a whole number of cycles for eq. (23) to be
          evaluable; implied by eq. (22) when that one holds. *)
  | Insufficient_cycle_duration of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      cycle_index : int;  (** k in eq. (23). *)
      provided : Time.t;
      required : Time.t;
    }  (** Violates eq. (23). *)
  | Duplicate_schedule_id of { id : Schedule_id.t }
  | Empty_schedule_set

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val validate : Schedule.t -> diagnostic list
(** All diagnostics for one PST; the empty list means the table satisfies
    eqs. (21)–(23). *)

val validate_set : Schedule.t list -> diagnostic list
(** {!validate} on every table plus set-level checks (non-empty, unique
    ids). *)

val is_valid : Schedule.t -> bool

val cycle_supply : Schedule.t -> Partition_id.t -> k:int -> Time.t
(** Left-hand side of eq. (23): the window time given to the partition
    during its [k]-th cycle within the MTF (windows whose offset falls in
    [\[kη, (k+1)η)]). Raises [Invalid_argument] if the partition has no
    requirement in the schedule. *)

val explain_requirement :
  Format.formatter -> Schedule.t -> Partition_id.t -> k:int -> unit
(** Prints the instantiation of eq. (23) for the given partition and cycle
    index — the derivation the paper spells out as eq. (25) for P1 under χ1.
    Raises [Invalid_argument] if the partition has no requirement. *)
