(** Partitions, eq. (1) and (16).

    Under mode-based schedules (paper Sect. 4.1) a partition is deprived of
    timing requirements of its own — ⟨τ_m, M_m(t)⟩ — since period and
    duration become attributes of the partition {e in a given schedule}
    (eq. (19)). The operating mode M_m(t) is runtime state; here we keep its
    type and the static description. *)

type mode =
  | Normal      (** Operational, process scheduler active. *)
  | Idle        (** Shut down, executing no processes. *)
  | Cold_start  (** Initializing, process scheduling disabled, cold context. *)
  | Warm_start  (** Initializing, process scheduling disabled, warm context. *)

val mode_equal : mode -> mode -> bool
val pp_mode : Format.formatter -> mode -> unit

type kind =
  | Application
      (** Uses the strict APEX service interface only. *)
  | System
      (** May bypass APEX and use POS-kernel functions directly (required by
          ARINC 653); typically runs management functions and is the only
          kind authorized to request schedule switches. *)

val kind_equal : kind -> kind -> bool
val pp_kind : Format.formatter -> kind -> unit

type t = {
  id : Ident.Partition_id.t;
  name : string;
  kind : kind;
  processes : Process.spec array;  (** τ_m, eq. (10). *)
  initial_mode : mode;
      (** Mode entered at system start — ARINC 653 partitions boot in
          [Cold_start]; tests may start them [Normal] directly. *)
}

val make :
  ?kind:kind ->
  ?initial_mode:mode ->
  id:Ident.Partition_id.t ->
  name:string ->
  Process.spec list ->
  t

val process_count : t -> int

val process_id : t -> int -> Ident.Process_id.t
(** [process_id p q] is the id of τ_(m,q). Raises [Invalid_argument] when
    [q] is out of range. *)

val find_process : t -> string -> (int * Process.spec) option
(** Look up a process by name. *)

val pp : Format.formatter -> t -> unit
