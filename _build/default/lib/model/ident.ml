module Partition_id = struct
  type t = int

  let make i =
    if i < 0 then invalid_arg "Partition_id.make: negative index" else i

  let index t = t
  let equal = Int.equal
  let compare = Int.compare
  let hash t = t
  let pp ppf t = Format.fprintf ppf "P%d" (t + 1)
end

module Process_id = struct
  type t = { partition : Partition_id.t; index : int }

  let make partition index =
    if index < 0 then invalid_arg "Process_id.make: negative index"
    else { partition; index }

  let partition t = t.partition
  let index t = t.index

  let equal a b =
    Partition_id.equal a.partition b.partition && Int.equal a.index b.index

  let compare a b =
    match Partition_id.compare a.partition b.partition with
    | 0 -> Int.compare a.index b.index
    | c -> c

  let pp ppf t =
    Format.fprintf ppf "τ%d,%d" (Partition_id.index t.partition + 1)
      (t.index + 1)
end

module Schedule_id = struct
  type t = int

  let make i =
    if i < 0 then invalid_arg "Schedule_id.make: negative index" else i

  let index t = t
  let equal = Int.equal
  let compare = Int.compare
  let pp ppf t = Format.fprintf ppf "χ%d" (t + 1)
end

module Port_name = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp = Format.pp_print_string
end
