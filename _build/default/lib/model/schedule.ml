open Air_sim
open Ident

type requirement = {
  partition : Partition_id.t;
  cycle : Time.t;
  duration : Time.t;
}

type window = {
  partition : Partition_id.t;
  offset : Time.t;
  duration : Time.t;
}

type change_action = No_action | Warm_restart_partition | Cold_restart_partition

let pp_change_action ppf a =
  Format.pp_print_string ppf
    (match a with
    | No_action -> "no-action"
    | Warm_restart_partition -> "warm-restart"
    | Cold_restart_partition -> "cold-restart")

type t = {
  id : Schedule_id.t;
  name : string;
  mtf : Time.t;
  requirements : requirement list;
  windows : window list;
  change_actions : (Partition_id.t * change_action) list;
}

let make ?(change_actions = []) ~id ~name ~mtf ~requirements windows =
  if mtf <= 0 then invalid_arg "Schedule.make: non-positive MTF";
  List.iter
    (fun w ->
      if w.duration <= 0 then
        invalid_arg "Schedule.make: non-positive window duration")
    windows;
  let windows =
    List.stable_sort (fun a b -> Time.compare a.offset b.offset) windows
  in
  { id; name; mtf; requirements; windows; change_actions }

let change_action_for t pid =
  match
    List.find_opt (fun (p, _) -> Partition_id.equal p pid) t.change_actions
  with
  | Some (_, a) -> a
  | None -> No_action

let requirement_for t pid =
  List.find_opt
    (fun (r : requirement) -> Partition_id.equal r.partition pid)
    t.requirements

let partitions t =
  List.fold_left
    (fun acc (r : requirement) ->
      if List.exists (Partition_id.equal r.partition) acc then acc
      else r.partition :: acc)
    [] t.requirements
  |> List.rev

let windows_of t pid =
  List.filter (fun (w : window) -> Partition_id.equal w.partition pid) t.windows

let total_window_time t pid =
  List.fold_left (fun acc w -> Time.add acc w.duration) Time.zero
    (windows_of t pid)

let utilization t =
  let busy =
    List.fold_left (fun acc w -> Time.add acc w.duration) Time.zero t.windows
  in
  float_of_int busy /. float_of_int t.mtf

let window_at t off =
  let off = off mod t.mtf in
  List.find_opt
    (fun w -> Time.(w.offset <= off) && off < w.offset + w.duration)
    t.windows

type preemption_point = { tick : Time.t; heir : Partition_id.t option }

let preemption_table t =
  (* Walk the sorted windows, emitting a point at each window start and an
     idle point after each window that is not immediately followed by the
     next one. A leading gap yields an idle point at tick 0 so that the
     table always starts there (Algorithm 1 indexes it cyclically). *)
  let points = ref [] in
  let emit tick heir = points := { tick; heir } :: !points in
  let cursor = ref Time.zero in
  List.iter
    (fun w ->
      if Time.(!cursor < w.offset) then emit !cursor None;
      emit w.offset (Some w.partition);
      cursor := Time.add w.offset w.duration)
    t.windows;
  if Time.(!cursor < t.mtf) then emit !cursor None;
  let table = Array.of_list (List.rev !points) in
  if Array.length table = 0 then [| { tick = Time.zero; heir = None } |]
  else table

let pp_window ppf (w : window) =
  Format.fprintf ppf "⟨%a, O=%a, c=%a⟩" Partition_id.pp w.partition Time.pp
    w.offset Time.pp w.duration

let pp_requirement ppf (r : requirement) =
  Format.fprintf ppf "⟨%a, η=%a, d=%a⟩" Partition_id.pp r.partition Time.pp
    r.cycle Time.pp r.duration

let pp ppf t =
  Format.fprintf ppf "@[<v2>%a %s: MTF=%a@,Q = {%a}@,ω = {%a}@]"
    Schedule_id.pp t.id t.name Time.pp t.mtf
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_requirement)
    t.requirements
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_window)
    t.windows
