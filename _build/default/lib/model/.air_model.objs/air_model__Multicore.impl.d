lib/model/multicore.ml: Air_sim Array Format Ident List Partition_id Printf Schedule Schedule_id Time Validate
