lib/model/schedule.ml: Air_sim Array Format Ident List Partition_id Schedule_id Time
