lib/model/validate.mli: Air_sim Format Ident Partition_id Schedule Schedule_id Time
