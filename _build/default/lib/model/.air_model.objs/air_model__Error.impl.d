lib/model/error.ml: Format Partition
