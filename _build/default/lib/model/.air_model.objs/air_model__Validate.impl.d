lib/model/validate.ml: Air_sim Format Hashtbl Ident List Partition_id Schedule Schedule_id Time
