lib/model/process.ml: Air_sim Format Time
