lib/model/event.ml: Air_sim Error Format Ident Partition Partition_id Port_name Process Process_id Schedule Schedule_id String Time
