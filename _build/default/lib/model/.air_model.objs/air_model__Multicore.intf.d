lib/model/multicore.mli: Air_sim Format Ident Partition_id Schedule Schedule_id Time Validate
