lib/model/ident.ml: Format Int String
