lib/model/schedule.mli: Air_sim Format Ident Partition_id Schedule_id Time
