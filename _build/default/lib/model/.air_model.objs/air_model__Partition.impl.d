lib/model/partition.ml: Array Format Ident Process String
