lib/model/error.mli: Format Partition
