lib/model/partition.mli: Format Ident Process
