lib/model/ident.mli: Format
