lib/model/process.mli: Air_sim Format Time
