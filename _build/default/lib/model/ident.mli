(** Identifiers for the entities of the AIR system model.

    Identifiers are small integers under the hood (they index arrays in the
    runtime) but are kept abstract so that a partition index can never be
    confused with a schedule index. *)

module Partition_id : sig
  type t

  val make : int -> t
  (** Raises [Invalid_argument] on negative indices. *)

  val index : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  (** Prints as ["P<n+1>"], matching the paper's 1-based notation. *)
end

module Process_id : sig
  type t
  (** A process is identified by its partition and its 0-based index within
      the partition's task set τ_m (eq. (10)). *)

  val make : Partition_id.t -> int -> t
  val partition : t -> Partition_id.t
  val index : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  (** Prints as ["τ<m>,<q>"] in the paper's 1-based notation. *)
end

module Schedule_id : sig
  type t

  val make : int -> t
  val index : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  (** Prints as ["χ<i+1>"]. *)
end

module Port_name : sig
  type t = string
  (** ARINC 653 ports are configuration-named; names are unique per module. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end
