open Air_sim

type state = Dormant | Ready | Running | Waiting

let state_equal a b =
  match (a, b) with
  | Dormant, Dormant | Ready, Ready | Running, Running | Waiting, Waiting ->
    true
  | (Dormant | Ready | Running | Waiting), _ -> false

let pp_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Dormant -> "dormant"
    | Ready -> "ready"
    | Running -> "running"
    | Waiting -> "waiting")

type periodicity = Periodic of Time.t | Aperiodic | Sporadic of Time.t

let pp_periodicity ppf = function
  | Periodic t -> Format.fprintf ppf "periodic(T=%a)" Time.pp t
  | Aperiodic -> Format.pp_print_string ppf "aperiodic"
  | Sporadic t -> Format.fprintf ppf "sporadic(T≥%a)" Time.pp t

type spec = {
  name : string;
  periodicity : periodicity;
  time_capacity : Time.t;
  wcet : Time.t;
  base_priority : int;
}

let spec ?(periodicity = Aperiodic) ?(time_capacity = Time.infinity)
    ?(wcet = 0) ?(base_priority = 10) name =
  (match periodicity with
  | Periodic t | Sporadic t ->
    if t <= 0 then invalid_arg "Process.spec: non-positive period"
  | Aperiodic -> ());
  { name; periodicity; time_capacity; wcet; base_priority }

let has_deadline s = not (Time.is_infinite s.time_capacity)

type status = {
  deadline_time : Time.t;
  current_priority : int;
  state : state;
}

let initial_status s =
  { deadline_time = Time.infinity;
    current_priority = s.base_priority;
    state = Dormant }

let pp_spec ppf s =
  Format.fprintf ppf "%s: %a D=%a C=%a p=%d" s.name pp_periodicity
    s.periodicity Time.pp s.time_capacity Time.pp s.wcet s.base_priority

let pp_status ppf s =
  Format.fprintf ppf "⟨D'=%a, p'=%d, %a⟩" Time.pp s.deadline_time
    s.current_priority pp_state s.state
