open Air_sim
open Ident

type diagnostic =
  | Empty_requirements of { schedule : Schedule_id.t }
  | Duplicate_requirement of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
    }
  | Nonpositive_cycle of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      cycle : Time.t;
    }
  | Duration_exceeds_cycle of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      duration : Time.t;
      cycle : Time.t;
    }
  | Window_overlap of {
      schedule : Schedule_id.t;
      first : Schedule.window;
      second : Schedule.window;
    }
  | Window_exceeds_mtf of {
      schedule : Schedule_id.t;
      window : Schedule.window;
      mtf : Time.t;
    }
  | Window_for_unknown_partition of {
      schedule : Schedule_id.t;
      window : Schedule.window;
    }
  | Mtf_not_multiple_of_lcm of {
      schedule : Schedule_id.t;
      mtf : Time.t;
      lcm : Time.t;
    }
  | Cycle_not_dividing_mtf of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      cycle : Time.t;
      mtf : Time.t;
    }
  | Insufficient_cycle_duration of {
      schedule : Schedule_id.t;
      partition : Partition_id.t;
      cycle_index : int;
      provided : Time.t;
      required : Time.t;
    }
  | Duplicate_schedule_id of { id : Schedule_id.t }
  | Empty_schedule_set

let pp_diagnostic ppf = function
  | Empty_requirements { schedule } ->
    Format.fprintf ppf "%a: Q is empty" Schedule_id.pp schedule
  | Duplicate_requirement { schedule; partition } ->
    Format.fprintf ppf "%a: duplicate requirement for %a" Schedule_id.pp
      schedule Partition_id.pp partition
  | Nonpositive_cycle { schedule; partition; cycle } ->
    Format.fprintf ppf "%a: %a has non-positive cycle η=%a" Schedule_id.pp
      schedule Partition_id.pp partition Time.pp cycle
  | Duration_exceeds_cycle { schedule; partition; duration; cycle } ->
    Format.fprintf ppf "%a: %a has duration d=%a exceeding cycle η=%a"
      Schedule_id.pp schedule Partition_id.pp partition Time.pp duration
      Time.pp cycle
  | Window_overlap { schedule; first; second } ->
    Format.fprintf ppf "%a: eq.(21) violated — window %a intersects %a"
      Schedule_id.pp schedule Schedule.pp_window first Schedule.pp_window
      second
  | Window_exceeds_mtf { schedule; window; mtf } ->
    Format.fprintf ppf
      "%a: eq.(21) violated — window %a extends beyond MTF=%a"
      Schedule_id.pp schedule Schedule.pp_window window Time.pp mtf
  | Window_for_unknown_partition { schedule; window } ->
    Format.fprintf ppf
      "%a: eq.(20) violated — window %a for a partition outside Q"
      Schedule_id.pp schedule Schedule.pp_window window
  | Mtf_not_multiple_of_lcm { schedule; mtf; lcm } ->
    Format.fprintf ppf
      "%a: eq.(22) violated — MTF=%a is not a multiple of lcm(η)=%a"
      Schedule_id.pp schedule Time.pp mtf Time.pp lcm
  | Cycle_not_dividing_mtf { schedule; partition; cycle; mtf } ->
    Format.fprintf ppf "%a: cycle η=%a of %a does not divide MTF=%a"
      Schedule_id.pp schedule Time.pp cycle Partition_id.pp partition Time.pp
      mtf
  | Insufficient_cycle_duration
      { schedule; partition; cycle_index; provided; required } ->
    Format.fprintf ppf
      "%a: eq.(23) violated — %a gets %a < d=%a in cycle k=%d"
      Schedule_id.pp schedule Partition_id.pp partition Time.pp provided
      Time.pp required cycle_index
  | Duplicate_schedule_id { id } ->
    Format.fprintf ppf "duplicate schedule identifier %a" Schedule_id.pp id
  | Empty_schedule_set -> Format.pp_print_string ppf "χ is empty"

let requirement_exn (s : Schedule.t) pid =
  match Schedule.requirement_for s pid with
  | Some r -> r
  | None ->
    invalid_arg
      (Format.asprintf "Validate: %a has no requirement in %a"
         Partition_id.pp pid Schedule_id.pp s.Schedule.id)

let cycle_supply (s : Schedule.t) pid ~k =
  let r = requirement_exn s pid in
  let lo = k * r.Schedule.cycle and hi = (k + 1) * r.Schedule.cycle in
  List.fold_left
    (fun acc (w : Schedule.window) ->
      if
        Partition_id.equal w.partition pid
        && Time.(lo <= w.offset)
        && Time.(w.offset < hi)
      then Time.add acc w.duration
      else acc)
    Time.zero s.Schedule.windows

let check_requirements (s : Schedule.t) =
  let id = s.Schedule.id in
  let diags = ref [] in
  let push d = diags := d :: !diags in
  if s.Schedule.requirements = [] then push (Empty_requirements { schedule = id });
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r : Schedule.requirement) ->
      let key = Partition_id.index r.partition in
      if Hashtbl.mem seen key then
        push (Duplicate_requirement { schedule = id; partition = r.partition })
      else Hashtbl.add seen key ();
      if r.cycle <= 0 then
        push
          (Nonpositive_cycle
             { schedule = id; partition = r.partition; cycle = r.cycle })
      else if Time.(r.cycle < r.duration) then
        push
          (Duration_exceeds_cycle
             { schedule = id;
               partition = r.partition;
               duration = r.duration;
               cycle = r.cycle }))
    s.Schedule.requirements;
  List.rev !diags

let check_windows (s : Schedule.t) =
  let id = s.Schedule.id in
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let in_q (w : Schedule.window) =
    List.exists
      (fun (r : Schedule.requirement) ->
        Partition_id.equal r.partition w.partition)
      s.Schedule.requirements
  in
  let rec walk = function
    | [] -> ()
    | [ (w : Schedule.window) ] ->
      if Time.(s.Schedule.mtf < Time.add w.offset w.duration) then
        push (Window_exceeds_mtf { schedule = id; window = w; mtf = s.mtf })
    | (w1 : Schedule.window) :: (w2 : Schedule.window) :: rest ->
      if Time.(w2.offset < Time.add w1.offset w1.duration) then
        push (Window_overlap { schedule = id; first = w1; second = w2 });
      walk (w2 :: rest)
  in
  walk s.Schedule.windows;
  List.iter
    (fun w ->
      if not (in_q w) then
        push (Window_for_unknown_partition { schedule = id; window = w }))
    s.Schedule.windows;
  List.rev !diags

let check_mtf (s : Schedule.t) =
  let id = s.Schedule.id in
  let cycles =
    List.filter_map
      (fun (r : Schedule.requirement) ->
        if r.cycle > 0 then Some r.cycle else None)
      s.Schedule.requirements
  in
  match cycles with
  | [] -> []
  | _ ->
    let lcm = Time.lcm_list cycles in
    if s.Schedule.mtf mod lcm <> 0 then
      [ Mtf_not_multiple_of_lcm { schedule = id; mtf = s.mtf; lcm } ]
    else []

let check_cycle_durations (s : Schedule.t) =
  let id = s.Schedule.id in
  let diags = ref [] in
  let push d = diags := d :: !diags in
  List.iter
    (fun (r : Schedule.requirement) ->
      if r.Schedule.cycle > 0 && r.Schedule.duration > 0 then
        if s.Schedule.mtf mod r.cycle <> 0 then
          push
            (Cycle_not_dividing_mtf
               { schedule = id;
                 partition = r.partition;
                 cycle = r.cycle;
                 mtf = s.mtf })
        else
          for k = 0 to (s.Schedule.mtf / r.cycle) - 1 do
            let provided = cycle_supply s r.partition ~k in
            if Time.(provided < r.duration) then
              push
                (Insufficient_cycle_duration
                   { schedule = id;
                     partition = r.partition;
                     cycle_index = k;
                     provided;
                     required = r.duration })
          done)
    s.Schedule.requirements;
  List.rev !diags

let validate s =
  check_requirements s @ check_windows s @ check_mtf s
  @ check_cycle_durations s

let validate_set schedules =
  let set_diags =
    if schedules = [] then [ Empty_schedule_set ]
    else begin
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun (s : Schedule.t) ->
          let key = Schedule_id.index s.id in
          if Hashtbl.mem seen key then
            Some (Duplicate_schedule_id { id = s.id })
          else begin
            Hashtbl.add seen key ();
            None
          end)
        schedules
    end
  in
  set_diags @ List.concat_map validate schedules

let is_valid s = validate s = []

let explain_requirement ppf (s : Schedule.t) pid ~k =
  let r = requirement_exn s pid in
  let lo = k * r.Schedule.cycle and hi = (k + 1) * r.Schedule.cycle in
  let windows =
    List.filter
      (fun (w : Schedule.window) ->
        Partition_id.equal w.partition pid
        && Time.(lo <= w.offset)
        && Time.(w.offset < hi))
      s.Schedule.windows
  in
  let provided = cycle_supply s pid ~k in
  Format.fprintf ppf
    "@[<v>Σ c over {ω ∈ ω_%d | P^ω = %a ∧ O ∈ [%a; %a)} ≥ d = %a@,"
    (Schedule_id.index s.id + 1)
    Partition_id.pp pid Time.pp lo Time.pp hi Time.pp r.duration;
  Format.fprintf ppf "  windows: {%a}@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Schedule.pp_window)
    windows;
  Format.fprintf ppf "  %a ≥ %a — %s@]" Time.pp provided Time.pp r.duration
    (if Time.(r.duration <= provided) then "holds" else "VIOLATED")
