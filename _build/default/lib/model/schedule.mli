(** Partition scheduling tables (PSTs) with mode-based schedules.

    Implements the extended model of paper Sect. 4.1: the system holds a set
    χ = {χ_1..χ_n(χ)} of schedules (eq. (17)); each schedule χ_i carries its
    major time frame MTF_i, the per-schedule partition timing requirements
    Q_i (eq. (19)) and the time windows ω_i (eq. (20)). The original
    single-schedule system of Sect. 3 is the special case n(χ) = 1. *)

open Air_sim
open Ident

type requirement = {
  partition : Partition_id.t;  (** P^χ_(i,m). *)
  cycle : Time.t;              (** η_(i,m): activation cycle. *)
  duration : Time.t;
      (** d_(i,m): processing time owed to the partition per cycle. May be
          zero for partitions without strict time requirements (e.g. those
          running non-real-time operating systems). *)
}

type window = {
  partition : Partition_id.t;  (** P^ω_(i,j). *)
  offset : Time.t;             (** O_(i,j), relative to MTF start. *)
  duration : Time.t;           (** c_(i,j), strictly positive. *)
}

(** Restart action applied to a partition the first time it is dispatched
    after a switch to this schedule (paper Sect. 4, ScheduleChangeAction). *)
type change_action =
  | No_action
  | Warm_restart_partition
  | Cold_restart_partition

val pp_change_action : Format.formatter -> change_action -> unit

type t = {
  id : Schedule_id.t;
  name : string;
  mtf : Time.t;                    (** MTF_i. *)
  requirements : requirement list; (** Q_i. *)
  windows : window list;           (** ω_i, sorted by offset. *)
  change_actions : (Partition_id.t * change_action) list;
      (** Per-partition restart actions; partitions absent from the list get
          [No_action]. *)
}

val make :
  ?change_actions:(Partition_id.t * change_action) list ->
  id:Schedule_id.t ->
  name:string ->
  mtf:Time.t ->
  requirements:requirement list ->
  window list ->
  t
(** Windows are sorted by offset. Structural validity (eq. (21)–(23)) is
    checked separately by {!Validate}; [make] only rejects obviously
    malformed input (non-positive MTF or window durations). *)

val change_action_for : t -> Partition_id.t -> change_action

val requirement_for : t -> Partition_id.t -> requirement option

val partitions : t -> Partition_id.t list
(** Partitions appearing in Q_i, in order of first appearance. *)

val windows_of : t -> Partition_id.t -> window list

val total_window_time : t -> Partition_id.t -> Time.t
(** Σ c_(i,j) over the partition's windows (left side of eq. (8)). *)

val utilization : t -> float
(** Fraction of the MTF covered by windows. *)

val window_at : t -> Time.t -> window option
(** [window_at s off] is the window covering MTF offset [off], if any
    ([None] during idle gaps). [off] is taken modulo the MTF. *)

(** {1 Preemption-point table}

    The AIR Partition Scheduler (Algorithm 1) does not scan windows at every
    tick; it consults a precompiled table of partition preemption points.
    Entry [j] holds the MTF offset at which the heir changes and the heir
    itself — [None] encodes an idle gap between windows. *)

type preemption_point = { tick : Time.t; heir : Partition_id.t option }

val preemption_table : t -> preemption_point array
(** Offsets are strictly increasing, starting at tick 0. *)

val pp : Format.formatter -> t -> unit
val pp_window : Format.formatter -> window -> unit
val pp_requirement : Format.formatter -> requirement -> unit
