(** The process model of eq. (10)–(15).

    Each partition holds a task set τ_m; each process τ_m,q carries the
    static attributes ⟨T, D, p, C⟩ of eq. (11) and the runtime status
    S(t) = ⟨D'(t), p'(t), St(t)⟩ of eq. (12). *)

open Air_sim

type state =
  | Dormant  (** Ineligible: not started, or stopped (eq. (13)). *)
  | Ready    (** Able to execute. *)
  | Running  (** Currently executing — at most one per partition. *)
  | Waiting
      (** Blocked on a delay, a semaphore, the next period, a message, or
          suspended by another process. *)

val state_equal : state -> state -> bool
val pp_state : Format.formatter -> state -> unit

type periodicity =
  | Periodic of Time.t
      (** Period T: consecutive release points are separated by T. *)
  | Aperiodic
      (** No period; activated once when started (T = ∞ in the ARINC 653
          convention). *)
  | Sporadic of Time.t
      (** Minimum inter-arrival time: T is a lower bound between
          consecutive activations. *)

val pp_periodicity : Format.formatter -> periodicity -> unit

type spec = {
  name : string;
  periodicity : periodicity;
  time_capacity : Time.t;
      (** Relative deadline D: the absolute deadline of an activation is its
          release point plus [time_capacity]. {!Time.infinity} means the
          process has no deadlines (D = ∞, eq. (11)). *)
  wcet : Time.t;
      (** Worst-case execution time C — the model addition the paper makes
          for schedulability analysis; informational at runtime. *)
  base_priority : int;
      (** p: lower numerical values represent greater priorities (paper
          convention, Sect. 3.3). *)
}

val spec :
  ?periodicity:periodicity ->
  ?time_capacity:Time.t ->
  ?wcet:Time.t ->
  ?base_priority:int ->
  string ->
  spec
(** Convenience constructor; defaults: aperiodic, no deadline, [wcet = 0]
    (unknown), priority 10. *)

val has_deadline : spec -> bool
(** False iff D = ∞; the deadline-violation set V(t) of eq. (24) only ranges
    over processes with deadlines. *)

type status = {
  deadline_time : Time.t;  (** D'(t): absolute deadline of the current activation. *)
  current_priority : int;  (** p'(t). *)
  state : state;           (** St(t). *)
}

val initial_status : spec -> status
(** Dormant, base priority, no deadline armed. *)

val pp_spec : Format.formatter -> spec -> unit
val pp_status : Format.formatter -> status -> unit
