open Air_sim
open Air_model
open Ident

(* Service in one MTF-relative interval [a, b) with 0 <= a <= b <= MTF. *)
let service_within_mtf (s : Schedule.t) pid a b =
  List.fold_left
    (fun acc (w : Schedule.window) ->
      if Partition_id.equal w.partition pid then begin
        let lo = Stdlib.max a w.offset in
        let hi = Stdlib.min b (Time.add w.offset w.duration) in
        if lo < hi then acc + (hi - lo) else acc
      end
      else acc)
    0 s.Schedule.windows

let service_in (s : Schedule.t) pid ~from ~until =
  if until <= from then 0
  else begin
    let mtf = s.Schedule.mtf in
    let per_mtf = service_within_mtf s pid 0 mtf in
    let first_frame = from / mtf and last_frame = (until - 1) / mtf in
    if first_frame = last_frame then
      service_within_mtf s pid (from mod mtf) (((until - 1) mod mtf) + 1)
    else begin
      let head = service_within_mtf s pid (from mod mtf) mtf in
      let tail = service_within_mtf s pid 0 (((until - 1) mod mtf) + 1) in
      let whole_frames = last_frame - first_frame - 1 in
      head + tail + (whole_frames * per_mtf)
    end
  end

let sbf (s : Schedule.t) pid delta =
  if delta <= 0 then 0
  else begin
    (* Worst case over all alignments: the interval may start at any offset
       within the MTF; candidate worst starts are window boundaries (start
       and end of each window of the partition, plus 0). *)
    let mtf = s.Schedule.mtf in
    let candidates =
      0
      :: List.concat_map
           (fun (w : Schedule.window) ->
             if Partition_id.equal w.partition pid then
               [ w.offset; Time.add w.offset w.duration ]
             else [])
           s.Schedule.windows
    in
    let candidates = List.sort_uniq Int.compare candidates in
    let candidates = List.filter (fun c -> c < mtf) candidates in
    List.fold_left
      (fun acc start ->
        Stdlib.min acc (service_in s pid ~from:start ~until:(start + delta)))
      max_int candidates
  end

let inverse_sbf (s : Schedule.t) pid c =
  if c <= 0 then Some 0
  else begin
    let per_mtf = service_within_mtf s pid 0 s.Schedule.mtf in
    if per_mtf = 0 then None
    else begin
      (* Binary search on the monotone sbf. Upper bound: enough whole MTFs
         to accumulate c plus one frame of alignment slack. *)
      let hi = ref s.Schedule.mtf in
      while sbf s pid !hi < c do
        hi := !hi * 2
      done;
      let lo = ref 0 and hi = ref !hi in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if sbf s pid mid >= c then hi := mid else lo := mid
      done;
      Some !hi
    end
  end

let utilization (s : Schedule.t) pid =
  float_of_int (service_within_mtf s pid 0 s.Schedule.mtf)
  /. float_of_int s.Schedule.mtf

let longest_blackout (s : Schedule.t) pid =
  let mtf = s.Schedule.mtf in
  let windows =
    List.filter
      (fun (w : Schedule.window) -> Partition_id.equal w.partition pid)
      s.Schedule.windows
  in
  match windows with
  | [] -> mtf
  | _ ->
    (* Gaps between consecutive service windows, wrapping around the MTF. *)
    let sorted =
      List.sort
        (fun (a : Schedule.window) (b : Schedule.window) ->
          Time.compare a.offset b.offset)
        windows
    in
    let rec gaps acc = function
      | (a : Schedule.window) :: ((b : Schedule.window) :: _ as rest) ->
        gaps ((b.offset - (a.offset + a.duration)) :: acc) rest
      | [ (last : Schedule.window) ] ->
        let first = List.hd sorted in
        (mtf - (last.offset + last.duration) + first.offset) :: acc
      | [] -> acc
    in
    List.fold_left Stdlib.max 0 (gaps [] sorted)
