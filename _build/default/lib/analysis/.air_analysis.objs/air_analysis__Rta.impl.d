lib/analysis/rta.ml: Air_model Air_sim Array Format List Process Schedule Supply Time
