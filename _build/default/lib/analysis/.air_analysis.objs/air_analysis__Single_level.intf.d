lib/analysis/single_level.mli: Air_model Air_sim Format Ident Partition_id Process Time
