lib/analysis/single_level.ml: Air_model Air_sim Array Format Ident List Partition_id Process Stdlib Time
