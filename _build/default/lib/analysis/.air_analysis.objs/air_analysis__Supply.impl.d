lib/analysis/supply.ml: Air_model Air_sim Ident Int List Partition_id Schedule Stdlib Time
