lib/analysis/report.ml: Air_model Air_sim Array Format Ident List Partition Partition_id Process Rta Schedule Schedule_id Supply Validate
