lib/analysis/synthesis.mli: Air_model Air_sim Format Ident Partition_id Schedule Schedule_id Time
