lib/analysis/supply.mli: Air_model Air_sim Ident Partition_id Schedule Time
