lib/analysis/synthesis.ml: Air_model Air_sim Array Format Ident List Partition_id Result Schedule Schedule_id Time
