lib/analysis/report.mli: Air_model Air_sim Format Partition Rta Schedule Validate
