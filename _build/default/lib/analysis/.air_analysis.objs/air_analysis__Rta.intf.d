lib/analysis/rta.mli: Air_model Air_sim Format Ident Partition_id Process Schedule Time
