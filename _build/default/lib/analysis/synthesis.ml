open Air_sim
open Air_model
open Ident

type failure =
  | Overcommitted of { utilization : float }
  | No_room of { partition : Partition_id.t; cycle_index : int }
  | Bad_requirement of string

let pp_failure ppf = function
  | Overcommitted { utilization } ->
    Format.fprintf ppf "requirements overcommitted: Σ d/η = %.3f > 1"
      utilization
  | No_room { partition; cycle_index } ->
    Format.fprintf ppf "no room for %a in its cycle k=%d" Partition_id.pp
      partition cycle_index
  | Bad_requirement msg -> Format.fprintf ppf "bad requirement: %s" msg

let synthesize ?(id = Schedule_id.make 0) ?(name = "synthesized") ?mtf
    requirements =
  let ( let* ) = Result.bind in
  let* () =
    if requirements = [] then Error (Bad_requirement "empty requirement set")
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (r : Schedule.requirement) ->
        let* () = acc in
        if r.cycle <= 0 then
          Error (Bad_requirement "non-positive cycle")
        else if r.duration < 0 then
          Error (Bad_requirement "negative duration")
        else if Time.(r.cycle < r.duration) then
          Error (Bad_requirement "duration exceeds cycle")
        else Ok ())
      (Ok ()) requirements
  in
  let utilization =
    List.fold_left
      (fun acc (r : Schedule.requirement) ->
        acc +. (float_of_int r.duration /. float_of_int r.cycle))
      0.0 requirements
  in
  let* () =
    if utilization > 1.0 +. 1e-9 then Error (Overcommitted { utilization })
    else Ok ()
  in
  let lcm =
    Time.lcm_list (List.map (fun (r : Schedule.requirement) -> r.cycle) requirements)
  in
  let mtf =
    match mtf with
    | None -> lcm
    | Some m -> if m mod lcm = 0 then m else lcm * ((m / lcm) + 1)
  in
  (* Earliest-fit over a tick-granular timeline: busy.(t) marks ticks
     already granted. Partitions with smaller cycles are placed first. *)
  let busy = Array.make mtf false in
  let sorted =
    List.stable_sort
      (fun (a : Schedule.requirement) (b : Schedule.requirement) ->
        Time.compare a.cycle b.cycle)
      requirements
  in
  let windows = ref [] in
  let place (r : Schedule.requirement) =
    let rec cycles k =
      if k >= mtf / r.cycle then Ok ()
      else begin
        let lo = k * r.cycle and hi = (k + 1) * r.cycle in
        (* Collect free ticks into maximal runs until the duration is
           covered. *)
        let remaining = ref r.duration in
        let cursor = ref lo in
        while !remaining > 0 && !cursor < hi do
          if busy.(!cursor) then incr cursor
          else begin
            let start = !cursor in
            while !cursor < hi && (not busy.(!cursor)) && !remaining > 0 do
              busy.(!cursor) <- true;
              decr remaining;
              incr cursor
            done;
            windows :=
              { Schedule.partition = r.partition;
                offset = start;
                duration = !cursor - start }
              :: !windows
          end
        done;
        if !remaining > 0 then
          Error (No_room { partition = r.partition; cycle_index = k })
        else cycles (k + 1)
      end
    in
    cycles 0
  in
  let* () =
    List.fold_left
      (fun acc r ->
        let* () = acc in
        place r)
      (Ok ()) sorted
  in
  Ok (Schedule.make ~id ~name ~mtf ~requirements !windows)

let synthesize_harmonic ?id ?name requirements =
  let cycles = List.map (fun (r : Schedule.requirement) -> r.cycle) requirements in
  match List.sort Time.compare cycles with
  | [] -> Error (Bad_requirement "empty requirement set")
  | _ :: _ as sorted ->
    let largest = List.nth sorted (List.length sorted - 1) in
    if List.for_all (fun c -> c > 0 && largest mod c = 0) sorted then
      synthesize ?id ?name requirements
    else Error (Bad_requirement "cycles are not harmonic")
