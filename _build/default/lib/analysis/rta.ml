open Air_sim
open Air_model

type verdict = {
  process : int;
  response_time : Time.t option;
  deadline : Time.t;
  schedulable : bool;
}

let pp_verdict ppf v =
  Format.fprintf ppf "τ%d: R=%s D=%a %s" (v.process + 1)
    (match v.response_time with
    | None -> "∞"
    | Some r -> string_of_int r)
    Time.pp v.deadline
    (if v.schedulable then "schedulable" else "NOT schedulable")

let min_interarrival (spec : Process.spec) =
  match spec.Process.periodicity with
  | Process.Periodic t | Process.Sporadic t -> Some t
  | Process.Aperiodic -> None

(* Demand of process i plus interference over an interval of length r.
   Equal priorities interfere symmetrically: under the FIFO-among-equals
   rule of eq. (14) an equal-priority peer's unfinished older activation
   runs first regardless of task index, so both directions must be
   counted for a sound bound. *)
let demand specs i r =
  let own = specs.(i).Process.wcet in
  Array.to_list specs
  |> List.mapi (fun j (spec : Process.spec) -> (j, spec))
  |> List.fold_left
       (fun acc (j, (spec : Process.spec)) ->
         if j = i then acc
         else if spec.Process.wcet = 0 then acc
         else if
           spec.Process.base_priority <= specs.(i).Process.base_priority
         then
           match min_interarrival spec with
           | Some t ->
             let jobs = ((r + t - 1) / t) in
             acc + (jobs * spec.Process.wcet)
           | None ->
             (* One-shot aperiodic interference: a single job. *)
             acc + spec.Process.wcet
         else acc)
       own

let response_time schedule pid specs i =
  if specs.(i).Process.wcet <= 0 then Some 0
  else begin
    let horizon =
      (* Give up beyond a generous horizon: divergence means unschedulable. *)
      16 * schedule.Schedule.mtf
    in
    let rec iterate r guard =
      if guard = 0 then None
      else begin
        let d = demand specs i r in
        match Supply.inverse_sbf schedule pid d with
        | None -> None
        | Some r' ->
          if r' > horizon then None
          else if r' <= r then Some r
          else iterate r' (guard - 1)
      end
    in
    iterate 1 1000
  end

let analyze schedule pid specs =
  (match Schedule.requirement_for schedule pid with
  | Some _ -> ()
  | None -> invalid_arg "Rta.analyze: partition not in schedule");
  Array.to_list
    (Array.mapi
       (fun i (spec : Process.spec) ->
         let deadline = spec.Process.time_capacity in
         let r = response_time schedule pid specs i in
         let schedulable =
           match r with
           | None -> false
           | Some r -> Time.is_infinite deadline || Time.(r <= deadline)
         in
         { process = i; response_time = r; deadline; schedulable })
       specs)

let all_schedulable schedule pid specs =
  List.for_all (fun v -> v.schedulable) (analyze schedule pid specs)

let scale_specs specs factor =
  Array.map
    (fun (spec : Process.spec) ->
      { spec with
        Process.wcet =
          int_of_float (ceil (float_of_int spec.Process.wcet *. factor)) })
    specs

let breakdown_utilization schedule pid specs =
  if not (all_schedulable schedule pid specs) then 0.0
  else begin
    let lo = ref 1.0 and hi = ref 1.0 in
    while all_schedulable schedule pid (scale_specs specs !hi) && !hi < 64.0 do
      lo := !hi;
      hi := !hi *. 2.0
    done;
    if !hi >= 64.0 then !hi
    else begin
      while !hi -. !lo > 0.01 do
        let mid = (!lo +. !hi) /. 2.0 in
        if all_schedulable schedule pid (scale_specs specs mid) then lo := mid
        else hi := mid
      done;
      !lo
    end
  end
