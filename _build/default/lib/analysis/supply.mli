(** Processor supply delivered to a partition by a scheduling table.

    The paper's system model "lays the ground for schedulability analysis"
    (Sect. 3); this module provides the supply side: how much processor time
    a partition's windows guarantee over any interval — the standard
    supply-bound function of hierarchical scheduling analysis, computed
    exactly from the PST rather than from an abstraction. *)

open Air_sim
open Air_model
open Ident

val service_in :
  Schedule.t -> Partition_id.t -> from:Time.t -> until:Time.t -> Time.t
(** Exact number of ticks the partition's windows grant in [\[from, until)],
    with the table repeating cyclically from time 0. *)

val sbf : Schedule.t -> Partition_id.t -> Time.t -> Time.t
(** [sbf s p delta]: the {e minimum} service the partition receives in any
    interval of length [delta] — the worst case over all alignments of the
    interval with the MTF. Monotone and superadditive-ish; [sbf s p 0 = 0]. *)

val inverse_sbf : Schedule.t -> Partition_id.t -> Time.t -> Time.t option
(** [inverse_sbf s p c]: the smallest interval length guaranteed to contain
    [c] ticks of service; [None] if the partition never accumulates [c]
    ticks (zero-duration partitions). *)

val utilization : Schedule.t -> Partition_id.t -> float
(** Window time over MTF. *)

val longest_blackout : Schedule.t -> Partition_id.t -> Time.t
(** Longest gap with no service for the partition — an upper bound on the
    detection latency of a deadline that expires while the partition is
    inactive (experiment E6). Zero when the partition has no windows never
    happens: returns the MTF in that degenerate case. *)
