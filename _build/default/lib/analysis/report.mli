(** Integration reports.

    The offline verification workflow the paper motivates (Sect. 1, 5):
    given the model-level description of a system — schedules and
    partitions with their task sets — produce the full report an
    integrator reviews before deployment: table validation against
    eqs. (21)–(23), per-partition supply characteristics (utilization,
    longest blackout — the deadline-detection latency bound), and
    per-process response-time verdicts under every schedule. *)

open Air_model

type partition_report = {
  partition : Partition.t;
  utilization : float;
  longest_blackout : Air_sim.Time.t;
  verdicts : Rta.verdict list;
}

type schedule_report = {
  schedule : Schedule.t;
  diagnostics : Validate.diagnostic list;
  partitions : partition_report list;
      (** One entry per partition with a requirement in the schedule. *)
}

type t = {
  schedules : schedule_report list;
  set_diagnostics : Validate.diagnostic list;
      (** Set-level diagnostics (duplicate ids, empty set). *)
  all_valid : bool;
  all_schedulable : bool;
}

val build : Partition.t list -> Schedule.t list -> t
(** Partitions absent from a schedule's requirements are skipped for that
    schedule. *)

val pp : Format.formatter -> t -> unit
(** The human-readable report. *)
