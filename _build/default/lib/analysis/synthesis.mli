(** Automated generation of partition scheduling tables.

    One of the paper's motivations for the formal model: "automated aids to
    the definition of system parameters" (Sect. 1). Given per-partition
    timing requirements ⟨η, d⟩, produce a PST satisfying eqs. (21)–(23), or
    report why none could be built by this (greedy, earliest-fit) method. *)

open Air_sim
open Air_model
open Ident

type failure =
  | Overcommitted of { utilization : float }
      (** Σ d/η exceeds 1 — no table can exist. *)
  | No_room of { partition : Partition_id.t; cycle_index : int }
      (** Earliest-fit could not place the partition's duration within one
          of its cycles (a different placement might still exist). *)
  | Bad_requirement of string

val pp_failure : Format.formatter -> failure -> unit

val synthesize :
  ?id:Schedule_id.t ->
  ?name:string ->
  ?mtf:Time.t ->
  Schedule.requirement list ->
  (Schedule.t, failure) result
(** Builds a table over [mtf] (default: the lcm of the cycles, eq. (22)).
    Partitions are placed in increasing cycle order (rate-monotonic-like);
    within each of a partition's cycles its duration is placed into the
    earliest free slots, possibly split across several windows. The result
    always passes {!Validate.validate}. *)

val synthesize_harmonic :
  ?id:Schedule_id.t ->
  ?name:string ->
  Schedule.requirement list ->
  (Schedule.t, failure) result
(** Like {!synthesize} but refuses non-harmonic cycle sets (every cycle
    must divide the largest) — the shape integrators usually insist on. *)
