open Air_sim
open Air_model
open Ident

type task = {
  owner : Partition_id.t;
  spec : Process.spec;
  babbling : bool;
}

let task ?(babbling = false) ~owner spec = { owner; spec; babbling }

type task_stats = {
  task_index : int;
  task_owner : Partition_id.t;
  releases : int;
  completions : int;
  deadline_misses : int;
  worst_response : Time.t option;
}

type stats = {
  horizon : Time.t;
  per_task : task_stats list;
  total_misses : int;
  starved_tasks : int;
}

type job = {
  mutable remaining : Time.t;
  mutable released_at : Time.t;
  mutable deadline : Time.t;
  mutable miss_counted : bool;
}

type runtime = {
  task : task;
  mutable next_release : Time.t;
  mutable active : job option;
  mutable backlog : int;
      (* Activations released while a previous one still runs. *)
  mutable releases : int;
  mutable completions : int;
  mutable misses : int;
  mutable worst : Time.t option;
}

let simulate tasks ~horizon =
  let rts =
    List.map
      (fun task ->
        { task;
          next_release = Time.zero;
          active = None;
          backlog = 0;
          releases = 0;
          completions = 0;
          misses = 0;
          worst = None })
      tasks
    |> Array.of_list
  in
  let release rt now =
    rt.releases <- rt.releases + 1;
    let deadline = Time.add now rt.task.spec.Process.time_capacity in
    match rt.active with
    | None ->
      rt.active <-
        Some
          { remaining = Stdlib.max 1 rt.task.spec.Process.wcet;
            released_at = now;
            deadline;
            miss_counted = false }
    | Some _ -> rt.backlog <- rt.backlog + 1
  in
  for now = 0 to horizon - 1 do
    (* Releases due at this tick. *)
    Array.iter
      (fun rt ->
        match rt.task.spec.Process.periodicity with
        | Process.Periodic t ->
          if now = rt.next_release then begin
            release rt now;
            rt.next_release <- Time.add rt.next_release t
          end
        | Process.Sporadic t ->
          (* Densest legal arrival pattern: every T. *)
          if now = rt.next_release then begin
            release rt now;
            rt.next_release <- Time.add rt.next_release t
          end
        | Process.Aperiodic -> if now = 0 then release rt now)
      rts;
    (* Deadline misses: counted the first tick past the deadline. *)
    Array.iter
      (fun rt ->
        match rt.active with
        | Some job
          when (not job.miss_counted)
               && (not (Time.is_infinite job.deadline))
               && Time.(job.deadline < now) ->
          job.miss_counted <- true;
          rt.misses <- rt.misses + 1
        | Some _ | None -> ())
      rts;
    (* Highest-priority ready job runs one tick (FIFO among equals by task
       order, which is release antiquity for same-priority tasks here). *)
    let heir = ref None in
    Array.iteri
      (fun i rt ->
        match rt.active with
        | None -> ()
        | Some _ -> (
          match !heir with
          | None -> heir := Some i
          | Some j ->
            if
              rts.(i).task.spec.Process.base_priority
              < rts.(j).task.spec.Process.base_priority
            then heir := Some i))
      rts;
    match !heir with
    | None -> ()
    | Some i -> (
      let rt = rts.(i) in
      match rt.active with
      | None -> ()
      | Some job ->
        if not rt.task.babbling then job.remaining <- job.remaining - 1;
        if job.remaining <= 0 then begin
          rt.completions <- rt.completions + 1;
          let response = now + 1 - job.released_at in
          rt.worst <-
            Some
              (match rt.worst with
              | None -> response
              | Some w -> Stdlib.max w response);
          (if (not job.miss_counted) && (not (Time.is_infinite job.deadline))
              && Time.(job.deadline < now + 1 - 1) then begin
             job.miss_counted <- true;
             rt.misses <- rt.misses + 1
           end);
          rt.active <- None;
          if rt.backlog > 0 then begin
            rt.backlog <- rt.backlog - 1;
            (* The queued activation was released at some earlier period
               boundary; approximate with the latest one. *)
            let period =
              match rt.task.spec.Process.periodicity with
              | Process.Periodic t | Process.Sporadic t -> t
              | Process.Aperiodic -> 1
            in
            let released_at = rt.next_release - period in
            rt.active <-
              Some
                { remaining = Stdlib.max 1 rt.task.spec.Process.wcet;
                  released_at;
                  deadline =
                    Time.add released_at rt.task.spec.Process.time_capacity;
                  miss_counted = false }
          end
        end)
  done;
  let per_task =
    Array.to_list
      (Array.mapi
         (fun i rt ->
           { task_index = i;
             task_owner = rt.task.owner;
             releases = rt.releases;
             completions = rt.completions;
             deadline_misses = rt.misses;
             worst_response = rt.worst })
         rts)
  in
  { horizon;
    per_task;
    total_misses = List.fold_left (fun a t -> a + t.deadline_misses) 0 per_task;
    starved_tasks =
      List.length
        (List.filter
           (fun (t : task_stats) -> t.releases > 0 && t.completions = 0)
           per_task) }

let misses_outside stats pid =
  List.fold_left
    (fun acc t ->
      if Partition_id.equal t.task_owner pid then acc
      else acc + t.deadline_misses)
    0 stats.per_task

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>horizon=%a misses=%d starved=%d" Time.pp s.horizon
    s.total_misses s.starved_tasks;
  List.iter
    (fun t ->
      Format.fprintf ppf
        "@,task %d (%a): releases=%d completions=%d misses=%d worstR=%s"
        t.task_index Partition_id.pp t.task_owner t.releases t.completions
        t.deadline_misses
        (match t.worst_response with
        | None -> "—"
        | Some w -> string_of_int w))
    s.per_task;
  Format.fprintf ppf "@]"
