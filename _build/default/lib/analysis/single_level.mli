(** Single-level priority preemptive scheduling — the related-work baseline.

    Audsley & Wellings' response-time analysis of APEX applications led them
    to propose abandoning two-level scheduling in favour of a single-level
    priority preemptive scheduler (paper Sect. 7, ref. [4]). This module
    simulates that alternative over the same task sets so experiment E8 can
    measure what the paper's architecture trades (raw schedulability) for
    what it gains (fault containment): under a babbling high-priority task,
    a single-level system starves every lower-priority task regardless of
    origin, while TSP confines the damage to the faulty task's partition. *)

open Air_sim
open Air_model
open Ident

type task = {
  owner : Partition_id.t;  (** Origin partition (for containment metrics). *)
  spec : Process.spec;
  babbling : bool;
      (** Fault model: the task never completes — it consumes every tick
          it is granted (a runaway loop). *)
}

val task : ?babbling:bool -> owner:Partition_id.t -> Process.spec -> task

type task_stats = {
  task_index : int;
  task_owner : Partition_id.t;
  releases : int;
  completions : int;
  deadline_misses : int;
      (** Activations whose deadline passed before completion (counted once
          per activation). *)
  worst_response : Time.t option;
      (** Largest observed completion − release; [None] if never completed. *)
}

type stats = {
  horizon : Time.t;
  per_task : task_stats list;
  total_misses : int;
  starved_tasks : int;  (** Tasks that never completed an activation. *)
}

val simulate : task list -> horizon:Time.t -> stats
(** Tick-accurate single-level preemptive priority simulation (lower
    numerical priority wins; FIFO among equals). Periodic tasks release at
    t = 0, T, 2T…; aperiodic tasks release once at t = 0. Overrunning jobs
    keep executing (the new activation is queued behind). *)

val misses_outside : stats -> Partition_id.t -> int
(** Deadline misses suffered by tasks NOT owned by the given partition —
    the containment metric: zero means faults in that partition did not
    propagate. *)

val pp_stats : Format.formatter -> stats -> unit
