(** Response-time analysis of processes inside a partition.

    Combines the classic fixed-priority demand recurrence with the
    partition's exact supply-bound function: the worst-case response time of
    process i is the smallest R such that the partition is guaranteed at
    least [C_i + Σ_{j ∈ hep(i)} ⌈R/T_j⌉·C_j] ticks of service in every
    interval of length R, where hep(i) are the processes of higher {e or
    equal} priority (under eq. (14)'s FIFO-among-equals rule an
    equal-priority peer's older activation runs first, so ties interfere
    symmetrically). A process is schedulable when R ≤ D.

    Aperiodic and sporadic processes contribute interference through their
    minimum inter-arrival time; processes without WCET ([wcet = 0]) are
    assumed free. *)

open Air_sim
open Air_model
open Ident

type verdict = {
  process : int;
  response_time : Time.t option;
      (** [None]: the recurrence diverged (unschedulable or starved). *)
  deadline : Time.t;
  schedulable : bool;
}

val pp_verdict : Format.formatter -> verdict -> unit

val analyze :
  Schedule.t -> Partition_id.t -> Process.spec array -> verdict list
(** One verdict per process, in task-set order. Raises [Invalid_argument]
    if the partition has no requirement in the schedule. *)

val all_schedulable :
  Schedule.t -> Partition_id.t -> Process.spec array -> bool

val breakdown_utilization :
  Schedule.t -> Partition_id.t -> Process.spec array -> float
(** Largest uniform scaling factor of all WCETs that keeps the task set
    schedulable (binary search, 1e-2 precision) — the classic sensitivity
    metric for experiment E11. *)
