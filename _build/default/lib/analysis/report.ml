open Air_model
open Ident

type partition_report = {
  partition : Partition.t;
  utilization : float;
  longest_blackout : Air_sim.Time.t;
  verdicts : Rta.verdict list;
}

type schedule_report = {
  schedule : Schedule.t;
  diagnostics : Validate.diagnostic list;
  partitions : partition_report list;
}

type t = {
  schedules : schedule_report list;
  set_diagnostics : Validate.diagnostic list;
  all_valid : bool;
  all_schedulable : bool;
}

let build partitions schedules =
  let set_diagnostics =
    (* Keep only the set-level entries; per-schedule ones are attributed
       below. *)
    List.filter
      (function
        | Validate.Duplicate_schedule_id _ | Validate.Empty_schedule_set ->
          true
        | _ -> false)
      (Validate.validate_set schedules)
  in
  let report_schedule (s : Schedule.t) =
    let diagnostics = Validate.validate s in
    let partition_reports =
      List.filter_map
        (fun (p : Partition.t) ->
          match Schedule.requirement_for s p.Partition.id with
          | None -> None
          | Some _ ->
            let verdicts =
              if diagnostics = [] then
                Rta.analyze s p.Partition.id p.Partition.processes
              else []
            in
            Some
              { partition = p;
                utilization = Supply.utilization s p.Partition.id;
                longest_blackout = Supply.longest_blackout s p.Partition.id;
                verdicts })
        partitions
    in
    { schedule = s; diagnostics; partitions = partition_reports }
  in
  let schedule_reports = List.map report_schedule schedules in
  let all_valid =
    set_diagnostics = []
    && List.for_all (fun r -> r.diagnostics = []) schedule_reports
  in
  let all_schedulable =
    all_valid
    && List.for_all
         (fun r ->
           List.for_all
             (fun pr ->
               List.for_all (fun v -> v.Rta.schedulable) pr.verdicts)
             r.partitions)
         schedule_reports
  in
  { schedules = schedule_reports;
    set_diagnostics;
    all_valid;
    all_schedulable }

let pp ppf t =
  List.iter
    (fun d ->
      Format.fprintf ppf "SET DIAGNOSTIC: %a@." Validate.pp_diagnostic d)
    t.set_diagnostics;
  List.iter
    (fun r ->
      Format.fprintf ppf "@.schedule %a %s (MTF %a):@." Schedule_id.pp
        r.schedule.Schedule.id r.schedule.Schedule.name Air_sim.Time.pp
        r.schedule.Schedule.mtf;
      (match r.diagnostics with
      | [] -> Format.fprintf ppf "  eqs. (21)-(23): hold@."
      | ds ->
        List.iter
          (fun d -> Format.fprintf ppf "  DIAGNOSTIC: %a@." Validate.pp_diagnostic d)
          ds);
      List.iter
        (fun pr ->
          Format.fprintf ppf
            "  %a %s: utilization %.1f%%, longest blackout %a@."
            Partition_id.pp pr.partition.Partition.id
            pr.partition.Partition.name (pr.utilization *. 100.0)
            Air_sim.Time.pp pr.longest_blackout;
          List.iter
            (fun (v : Rta.verdict) ->
              Format.fprintf ppf "    %s %a@."
                pr.partition.Partition.processes.(v.Rta.process).Process.name
                Rta.pp_verdict v)
            pr.verdicts)
        r.partitions)
    t.schedules;
  Format.fprintf ppf "@.verdict: tables %s, processes %s@."
    (if t.all_valid then "valid" else "INVALID")
    (if t.all_schedulable then "all schedulable"
     else "NOT all schedulable (or tables invalid)")
