open Air_model
open Air_pos
open Air
open Ident

let aocs = Partition_id.make 0
let ttc = Partition_id.make 1
let payload = Partition_id.make 2
let fdir = Partition_id.make 3

let launch = Schedule_id.make 0
let science = Schedule_id.make 1
let safe = Schedule_id.make 2

let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

let launch_schedule =
  Schedule.make ~id:launch ~name:"launch" ~mtf:1200
    ~requirements:[ q aocs 600 300; q ttc 1200 200; q fdir 600 100 ]
    (* FDIR's two windows sit exactly one watchdog period (600) apart so
       the 600-tick releases are always served as they arrive. *)
    [ w aocs 0 300;
      w ttc 300 200;
      w fdir 500 100;
      w aocs 600 300;
      w fdir 1100 100 ]

let science_schedule =
  Schedule.make ~id:science ~name:"science" ~mtf:1200
    ~requirements:
      [ q aocs 600 100; q ttc 1200 100; q payload 1200 600; q fdir 600 50 ]
    ~change_actions:[ (payload, Schedule.Cold_restart_partition) ]
    [ w aocs 0 100;
      w fdir 100 50;
      w payload 150 450;
      w aocs 600 100;
      w fdir 700 50;
      w payload 750 150;
      w ttc 900 100 ]

let safe_schedule =
  Schedule.make ~id:safe ~name:"safe" ~mtf:1200
    ~requirements:[ q aocs 600 100; q ttc 1200 200; q fdir 600 300 ]
    ~change_actions:[ (aocs, Schedule.Warm_restart_partition) ]
    [ w fdir 0 300;
      w aocs 300 100;
      w ttc 400 100;
      w fdir 600 300;
      w aocs 900 100;
      w ttc 1000 100 ]

let schedules = [ launch_schedule; science_schedule; safe_schedule ]

let phases =
  [ ("launch", launch); ("science", science); ("safe", safe) ]

let aocs_partition =
  Partition.make ~id:aocs ~name:"AOCS"
    [ Process.spec ~periodicity:(Process.Periodic 600) ~time_capacity:600
        ~wcet:80 ~base_priority:5 "attitude";
      Process.spec ~periodicity:(Process.Periodic 1200) ~time_capacity:1200
        ~wcet:15 ~base_priority:12 "momentum-dump" ]

let aocs_scripts =
  [ Script.periodic_body [ Script.Compute 80; Script.Log "attitude ok" ];
    Script.periodic_body [ Script.Compute 15; Script.Log "momentum dumped" ] ]

let ttc_partition =
  Partition.make ~id:ttc ~name:"TTC"
    [ Process.spec ~periodicity:(Process.Periodic 1200) ~time_capacity:1200
        ~wcet:60 ~base_priority:6 "beacon";
      Process.spec ~periodicity:(Process.Periodic 1200) ~time_capacity:1200
        ~wcet:40 ~base_priority:9 "command" ]

let ttc_scripts =
  [ Script.periodic_body [ Script.Compute 60; Script.Log "beacon" ];
    Script.periodic_body [ Script.Compute 40; Script.Log "commands polled" ] ]

let payload_partition =
  Partition.make ~id:payload ~name:"Payload"
    [ Process.spec ~periodicity:(Process.Periodic 1200) ~time_capacity:1200
        ~wcet:400 ~base_priority:10 "experiment";
      Process.spec ~periodicity:(Process.Periodic 1200) ~time_capacity:1200
        ~wcet:100 ~base_priority:14 "compress" ]

let payload_scripts =
  [ Script.periodic_body [ Script.Compute 400; Script.Log "experiment run" ];
    Script.periodic_body [ Script.Compute 100; Script.Log "data compressed" ] ]

let fdir_partition =
  Partition.make ~id:fdir ~name:"FDIR" ~kind:Partition.System
    [ Process.spec ~periodicity:(Process.Periodic 600) ~time_capacity:600
        ~wcet:50 ~base_priority:3 "watchdog";
      Process.spec ~wcet:20 ~base_priority:8 "mode-manager" ]

let fdir_scripts =
  [ Script.periodic_body [ Script.Compute 50; Script.Log "watchdog kick" ];
    Script.make
      [ Script.Log_schedule_status; Script.Timed_wait 1200 ] ]

let config () =
  System.config
    ~partitions:
      [ System.partition_setup aocs_partition aocs_scripts;
        System.partition_setup ttc_partition ttc_scripts;
        System.partition_setup payload_partition payload_scripts;
        System.partition_setup fdir_partition fdir_scripts ]
    ~schedules ~initial_schedule:launch ()

let make () = System.create (config ())
