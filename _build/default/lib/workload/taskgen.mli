(** Synthetic partitioned task-set generation (experiments E8 and E11).

    UUniFast utilizations, log-uniform harmonic periods, rate-monotonic
    priorities, implicit deadlines. Produces both the model-level partitions
    (with one compute-loop script per process) and the per-partition timing
    requirements ⟨η, d⟩ from which a PST can be synthesized. *)

open Air_sim
open Air_model
open Air_pos

type t = {
  partitions : (Partition.t * Script.t list) list;
  requirements : Schedule.requirement list;
}

val harmonic_periods : int array
(** The period menu: {400, 800, 1600, 3200} ticks — harmonic so that
    synthesized MTFs stay small. *)

val generate :
  ?procs_per_partition:int ->
  ?utilization:float ->
  Rng.t ->
  n_partitions:int ->
  t
(** [utilization] (default 0.5) is the total system utilization, split
    evenly across partitions and by UUniFast across each partition's
    processes. Each partition's cycle is its shortest process period; its
    duration is the partition utilization times the cycle, rounded up. *)

val with_babbling : t -> partition:int -> t
(** Replace the first process of the given partition (0-based) with a
    babbling variant: highest priority, a compute loop that never yields —
    the fault model of experiment E8. *)

val babbling_name : string
