open Air_model
open Air_pos
open Air_ipc
open Air
open Ident

let p1 = Partition_id.make 0
let p2 = Partition_id.make 1
let p3 = Partition_id.make 2
let p4 = Partition_id.make 3

let chi1 = Schedule_id.make 0
let chi2 = Schedule_id.make 1

(* Q1 = Q2 = {⟨P1,1300,200⟩, ⟨P2,650,100⟩, ⟨P3,650,100⟩, ⟨P4,1300,100⟩} *)
let requirements =
  [ { Schedule.partition = p1; cycle = 1300; duration = 200 };
    { Schedule.partition = p2; cycle = 650; duration = 100 };
    { Schedule.partition = p3; cycle = 650; duration = 100 };
    { Schedule.partition = p4; cycle = 1300; duration = 100 } ]

let window partition offset duration =
  { Schedule.partition; offset; duration }

let schedule_1 =
  Schedule.make ~id:chi1 ~name:"chi1" ~mtf:1300 ~requirements
    [ window p1 0 200;
      window p2 200 100;
      window p3 300 100;
      window p4 400 600;
      window p2 1000 100;
      window p3 1100 100;
      window p4 1200 100 ]

let schedule_2 =
  Schedule.make ~id:chi2 ~name:"chi2" ~mtf:1300 ~requirements
    [ window p1 0 200;
      window p4 200 100;
      window p3 300 100;
      window p2 400 600;
      window p4 1000 100;
      window p3 1100 100;
      window p2 1200 100 ]

let faulty_process_name = "faulty"

(* Interpartition traffic: attitude quaternions P1→P4 over a sampling
   channel; science frames P4→P2 and housekeeping telemetry P2→P3 over
   queuing channels. *)
let network =
  { Port.ports =
      [ Port.sampling_port ~name:"ATT_OUT" ~partition:p1
          ~direction:Port.Source ~refresh:1300 ~max_message_size:64;
        Port.sampling_port ~name:"ATT_IN" ~partition:p4
          ~direction:Port.Destination ~refresh:1300 ~max_message_size:64;
        Port.queuing_port ~name:"SCI_OUT" ~partition:p4
          ~direction:Port.Source ~depth:8 ~max_message_size:128;
        Port.queuing_port ~name:"SCI_IN" ~partition:p2
          ~direction:Port.Destination ~depth:8 ~max_message_size:128;
        Port.queuing_port ~name:"TM_OUT" ~partition:p2
          ~direction:Port.Source ~depth:8 ~max_message_size:128;
        Port.queuing_port ~name:"TM_IN" ~partition:p3
          ~direction:Port.Destination ~depth:8 ~max_message_size:128 ];
    channels =
      [ { Port.source = "ATT_OUT"; destinations = [ "ATT_IN" ] };
        { Port.source = "SCI_OUT"; destinations = [ "SCI_IN" ] };
        { Port.source = "TM_OUT"; destinations = [ "TM_IN" ] } ] }

let aocs =
  Partition.make ~id:p1 ~name:"AOCS"
    [ Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:1300
        ~wcet:70 ~base_priority:5 "attitude-control";
      (* Demand 150 > the 140 ticks/MTF left to it by attitude-control:
         the process overruns perpetually and misses one deadline per MTF,
         detected at each subsequent dispatch of P1 (paper Sect. 6). *)
      Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:300
        ~wcet:150 ~base_priority:20 faulty_process_name ]

let aocs_scripts =
  [ Script.periodic_body
      [ Script.Compute 60;
        Script.Write_sampling ("ATT_OUT", "q=[0.1 0.2 0.3 0.9]");
        Script.Log "attitude updated" ];
    Script.periodic_body
      [ Script.Compute 150; Script.Log "faulty iteration complete" ] ]

let obdh =
  Partition.make ~id:p2 ~name:"OBDH" ~kind:Partition.System
    [ Process.spec ~periodicity:(Process.Periodic 650) ~time_capacity:650
        ~wcet:45 ~base_priority:8 "housekeeping";
      Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:1300
        ~wcet:25 ~base_priority:12 "data-collector" ]

let obdh_scripts =
  [ Script.periodic_body
      [ Script.Compute 40;
        Script.Send_queuing ("TM_OUT", "hk-frame");
        Script.Log "housekeeping cycle" ];
    Script.periodic_body
      [ Script.Compute 20;
        Script.Receive_queuing ("SCI_IN", 0);
        Script.Log "science data collected" ] ]

let ttc =
  Partition.make ~id:p3 ~name:"TTC"
    [ Process.spec ~periodicity:(Process.Periodic 650) ~time_capacity:650
        ~wcet:45 ~base_priority:7 "telemetry";
      Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:1300
        ~wcet:25 ~base_priority:15 "ranging" ]

let ttc_scripts =
  [ Script.periodic_body
      [ Script.Compute 40;
        Script.Receive_queuing ("TM_IN", 0);
        Script.Log "telemetry frame downlinked" ];
    Script.periodic_body [ Script.Compute 20; Script.Log "ranging tone" ] ]

let payload =
  Partition.make ~id:p4 ~name:"Payload"
      (* Imaging (80) + thermal control (15) fit within one 100-tick
         window, so in-flight activations survive χ1 ↔ χ2 switches. *)
    [ Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:1300
        ~wcet:85 ~base_priority:10 "imaging";
      Process.spec ~periodicity:(Process.Periodic 1300) ~time_capacity:1300
        ~wcet:18 ~base_priority:18 "thermal-control" ]

let payload_scripts =
  [ Script.periodic_body
      [ Script.Read_sampling "ATT_IN";
        Script.Compute 80;
        Script.Send_queuing ("SCI_OUT", "image-frame");
        Script.Log "image captured" ];
    Script.periodic_body
      [ Script.Compute 15; Script.Log "thermal loop" ] ]

let config ?hm_tables () =
  let hm_tables = Option.value ~default:Hm.default_tables hm_tables in
  System.config ~network ~hm_tables
    ~partitions:
      [ System.partition_setup
          ~autostart:[ (faulty_process_name, false) ]
          aocs aocs_scripts;
        System.partition_setup obdh obdh_scripts;
        System.partition_setup ttc ttc_scripts;
        System.partition_setup payload payload_scripts ]
    ~schedules:[ schedule_1; schedule_2 ]
    ()

let make ?hm_tables () = System.create (config ?hm_tables ())

let inject_fault system =
  match System.start_process system p1 ~name:faulty_process_name with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Satellite.inject_fault: " ^ msg)
