lib/workload/taskgen.mli: Air_model Air_pos Air_sim Partition Rng Schedule Script
