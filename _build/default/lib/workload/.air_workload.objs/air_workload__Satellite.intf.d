lib/workload/satellite.mli: Air Air_model Hm Ident Schedule System
