lib/workload/mission.mli: Air Air_model Ident Schedule System
