lib/workload/taskgen.ml: Air_model Air_pos Air_sim Array Ident List Partition Partition_id Printf Process Rng Schedule Script Stdlib
