lib/workload/mission.ml: Air Air_model Air_pos Ident Partition Partition_id Process Schedule Schedule_id Script System
