lib/workload/satellite.ml: Air Air_ipc Air_model Air_pos Hm Ident Option Partition Partition_id Port Process Schedule Schedule_id Script System
