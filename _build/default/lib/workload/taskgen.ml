open Air_sim
open Air_model
open Air_pos
open Ident

type t = {
  partitions : (Partition.t * Script.t list) list;
  requirements : Schedule.requirement list;
}

let harmonic_periods = [| 400; 800; 1600; 3200 |]

let babbling_name = "babbler"

let generate ?(procs_per_partition = 3) ?(utilization = 0.5) rng
    ~n_partitions =
  if n_partitions <= 0 then invalid_arg "Taskgen.generate: no partitions";
  let per_partition_util = utilization /. float_of_int n_partitions in
  let make_partition m =
    let pid = Partition_id.make m in
    let utils = Rng.uunifast rng procs_per_partition per_partition_util in
    let specs_and_scripts =
      Array.to_list
        (Array.mapi
           (fun q u ->
             let period = Rng.pick rng harmonic_periods in
             let wcet =
               Stdlib.max 1 (int_of_float (u *. float_of_int period))
             in
             let spec =
               Process.spec
                 ~periodicity:(Process.Periodic period)
                 ~time_capacity:period ~wcet
                 ~base_priority:period (* rate-monotonic: shorter period,
                                          numerically lower priority *)
                 (Printf.sprintf "task-%d-%d" (m + 1) (q + 1))
             in
             (spec, Script.periodic_body [ Script.Compute wcet ]))
           utils)
    in
    let specs = List.map fst specs_and_scripts in
    let scripts = List.map snd specs_and_scripts in
    let partition =
      Partition.make ~id:pid ~name:(Printf.sprintf "SYNTH-%d" (m + 1)) specs
    in
    let cycle =
      List.fold_left
        (fun acc (spec : Process.spec) ->
          match spec.Process.periodicity with
          | Process.Periodic t -> Stdlib.min acc t
          | Process.Sporadic _ | Process.Aperiodic -> acc)
        max_int specs
    in
    let cycle = if cycle = max_int then harmonic_periods.(0) else cycle in
    let duration =
      Stdlib.max 1
        (int_of_float (ceil (per_partition_util *. float_of_int cycle)))
    in
    ((partition, scripts), { Schedule.partition = pid; cycle; duration })
  in
  let built = List.init n_partitions make_partition in
  { partitions = List.map fst built; requirements = List.map snd built }

let with_babbling t ~partition =
  let partitions =
    List.mapi
      (fun m ((p : Partition.t), scripts) ->
        if m <> partition then (p, scripts)
        else begin
          let processes = Array.copy p.Partition.processes in
          (match Array.length processes with
          | 0 -> invalid_arg "Taskgen.with_babbling: empty partition"
          | _ -> ());
          let victim = processes.(0) in
          processes.(0) <-
            { victim with
              Process.name = babbling_name;
              base_priority = 0 };
          let scripts =
            match scripts with
            | _ :: rest ->
              (* A runaway loop: computes forever, never reaches its
                 periodic wait. *)
              Script.make [ Script.Compute 1_000_000_000 ] :: rest
            | [] -> scripts
          in
          ( { p with Partition.processes },
            scripts )
        end)
      t.partitions
  in
  { t with partitions }
