(** A four-phase mission profile for the mode-based schedules experiment
    (E7).

    The same four onboard functions — AOCS, TTC, Payload and FDIR — have
    different temporal requirements in different mission phases (paper
    Sect. 4: "adaptation of partition scheduling to different modes/phases
    (initialization, operation, etc.)"). Three PSTs share an MTF of 1200:

    - {e launch}: AOCS-heavy, payload gets no processor time;
    - {e science}: payload-heavy;
    - {e safe}: FDIR-heavy, payload off, minimal AOCS/TTC service. *)

open Air_model
open Air

val aocs : Ident.Partition_id.t
val ttc : Ident.Partition_id.t
val payload : Ident.Partition_id.t
val fdir : Ident.Partition_id.t

val launch : Ident.Schedule_id.t
val science : Ident.Schedule_id.t
val safe : Ident.Schedule_id.t

val schedules : Schedule.t list

val phases : (string * Ident.Schedule_id.t) list
(** In mission order: launch → science → safe. *)

val config : unit -> System.config
val make : unit -> System.t
