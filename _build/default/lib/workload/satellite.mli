(** The paper's prototype system (Sect. 6, Fig. 8).

    Four partitions running mockup applications representative of typical
    satellite functions, two partition scheduling tables over an MTF of
    1300 time units, and a faulty process on P1 that can be injected so a
    deadline miss occurs even though both PSTs comply with P1's timing
    requirements (eq. (25)). *)

open Air_model
open Air

val p1 : Ident.Partition_id.t
(** AOCS. *)

val p2 : Ident.Partition_id.t
(** OBDH — the system partition. *)

val p3 : Ident.Partition_id.t
(** TTC. *)

val p4 : Ident.Partition_id.t
(** Payload. *)

val chi1 : Ident.Schedule_id.t
val chi2 : Ident.Schedule_id.t

val schedule_1 : Schedule.t
(** χ1 of Fig. 8: windows (P1,0,200) (P2,200,100) (P3,300,100) (P4,400,600)
    (P2,1000,100) (P3,1100,100) (P4,1200,100); MTF = 1300;
    Q = {(P1,1300,200), (P2,650,100), (P3,650,100), (P4,1300,100)}. *)

val schedule_2 : Schedule.t
(** χ2 of Fig. 8 — P2 and P4 exchange their window patterns. *)

val faulty_process_name : string
(** The P1 process whose injection (via {!Air.System.start_process})
    provokes deadline violations: its 250-tick workload cannot complete
    within its 300-tick time capacity given P1's 200 ticks per MTF. *)

val config : ?hm_tables:Hm.tables -> unit -> System.config
(** The full prototype configuration: partitions, scripts, both PSTs and
    the interpartition network (attitude data P1→P4 by sampling port,
    science data P4→P2 and telemetry P2→P3 by queuing ports). *)

val make : ?hm_tables:Hm.tables -> unit -> System.t

val inject_fault : System.t -> unit
(** Start the faulty process on P1 (the prototype's keyboard action). *)
