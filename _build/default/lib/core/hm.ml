open Air_model
open Ident

type tables = {
  process_actions :
    (Partition_id.t * Error.code * Error.process_action) list;
  partition_actions :
    (Partition_id.t * Error.code * Error.partition_action) list;
  module_actions : (Error.code * Error.module_action) list;
}

let default_tables =
  { process_actions = []; partition_actions = []; module_actions = [] }

let strict_tables =
  let every_partition make =
    (* Strict defaults are expressed for the first 16 partitions — enough
       for any configuration in this repository. *)
    List.init 16 (fun i -> make (Partition_id.make i))
  in
  { process_actions =
      every_partition (fun p -> (p, Error.Deadline_missed, Error.Stop_process));
    partition_actions =
      every_partition (fun p ->
          (p, Error.Memory_violation, Error.Partition_warm_restart));
    module_actions =
      [ (Error.Hardware_fault, Error.Module_reset);
        (Error.Power_failure, Error.Module_shutdown) ] }

type t = {
  tables : tables;
  occurrence : (int * int option * Error.code, int) Hashtbl.t;
      (* (partition index or -1, process, code) → count. *)
  mutable total : int;
}

let create ?(tables = default_tables) () =
  { tables; occurrence = Hashtbl.create 32; total = 0 }

let bump t key =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.occurrence key) + 1 in
  Hashtbl.replace t.occurrence key n;
  t.total <- t.total + 1;
  n

let resolve_process_error t ~partition ~process ~code =
  let occurrences =
    bump t (Partition_id.index partition, Some process, code)
  in
  let configured =
    List.find_map
      (fun (p, c, a) ->
        if Partition_id.equal p partition && Error.code_equal c code then
          Some a
        else None)
      t.tables.process_actions
  in
  match configured with
  | None -> Error.Ignore_error
  | Some (Error.Log_then (threshold, action)) ->
    if occurrences <= threshold then Error.Ignore_error else action
  | Some action -> action

let resolve_partition_error t ~partition ~code =
  ignore (bump t (Partition_id.index partition, None, code));
  let configured =
    List.find_map
      (fun (p, c, a) ->
        if Partition_id.equal p partition && Error.code_equal c code then
          Some a
        else None)
      t.tables.partition_actions
  in
  Option.value ~default:Error.Partition_ignore configured

let resolve_module_error t ~code =
  ignore (bump t (-1, None, code));
  let configured =
    List.find_map
      (fun (c, a) -> if Error.code_equal c code then Some a else None)
      t.tables.module_actions
  in
  Option.value ~default:Error.Module_ignore configured

let error_count t = t.total

let count_for t ~partition ~code =
  let matches (p, _, c) =
    Error.code_equal c code
    &&
    match partition with
    | None -> true
    | Some pid -> p = Partition_id.index pid
  in
  Hashtbl.fold
    (fun key n acc -> if matches key then acc + n else acc)
    t.occurrence 0

let reset_counts t =
  Hashtbl.reset t.occurrence;
  t.total <- 0
