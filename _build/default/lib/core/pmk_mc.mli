(** Multicore Partition Management Kernel — paper future-work item (iv).

    One Partition Scheduler + Dispatcher pair (Algorithms 1 and 2) per
    core, driven off the same global clock tick over a shared set of
    multicore scheduling tables. Mode-based schedule switches are
    broadcast: every core's scheduler stores the same next-schedule
    identifier and, because all lanes of one table share its MTF, the
    switch takes effect on every core at the same boundary.

    Correctness relies on {!Air_model.Multicore.validate}: a partition's
    windows never overlap across cores, so at any tick each partition is
    active on at most one core and the per-partition POS/PAL state is only
    ever driven from one lane. *)

open Air_model
open Ident

type t

val create :
  ?initial_schedule:Schedule_id.t ->
  partition_count:int ->
  Multicore.t list ->
  t
(** Raises [Invalid_argument] if any table fails
    {!Air_model.Multicore.validate}, the tables disagree on core count, or
    identifiers are not dense. *)

val core_count : t -> int
val schedule_count : t -> int
val ticks : t -> Air_sim.Time.t
val current_schedule : t -> Schedule_id.t
val next_schedule : t -> Schedule_id.t

val request_schedule_switch :
  t -> Schedule_id.t -> (unit, Pmk.switch_error) result
(** Broadcast to every core's scheduler. *)

val tick : t -> Pmk.tick_outcome array
(** One outcome per core, in core order. *)

val active_partitions : t -> Partition_id.t option array
(** Who holds each core right now. *)

val core : t -> int -> Pmk.t
(** The underlying single-core scheduler (observation only). *)
