open Air_sim
open Air_model

type t = {
  partition : Ident.Partition_id.t;
  store : Deadline_store.t;
}

let create ?(store = Deadline_store.Linked_list_impl) ~partition () =
  { partition; store = Deadline_store.create store }

let partition t = t.partition

let register_deadline t ~process deadline =
  Deadline_store.register t.store ~process deadline

let unregister_deadline t ~process =
  Deadline_store.unregister t.store ~process

let earliest_deadline t = Deadline_store.earliest t.store

let deadline_of t ~process = Deadline_store.find t.store ~process

let deadline_count t = Deadline_store.size t.store

let clear_deadlines t = Deadline_store.clear t.store

type violation = { process : int; deadline : Time.t }

let announce_ticks t ~now ~elapsed ~announce_to_pos =
  (* Algorithm 3, line 1: native POS clock tick announcement, invoked with
     the number of ticks elapsed since the partition last held the
     processing resources. *)
  announce_to_pos ~elapsed;
  (* Lines 2–8: verify the earliest deadline(s); only in the presence of a
     violation are further deadlines checked. *)
  let rec verify acc =
    match Deadline_store.earliest t.store with
    | Some (process, deadline) when Time.(deadline < now) ->
      Deadline_store.remove_earliest t.store;
      verify ({ process; deadline } :: acc)
    | Some _ | None -> List.rev acc
  in
  verify []

let violations_now t ~now =
  List.filter_map
    (fun (process, deadline) ->
      if Time.(deadline < now) then Some { process; deadline } else None)
    (Deadline_store.to_sorted_list t.store)

let store_impl t = Deadline_store.impl t.store
