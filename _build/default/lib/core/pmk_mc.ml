open Air_model

type t = { cores : Pmk.t array }

let create ?initial_schedule ~partition_count tables =
  if tables = [] then invalid_arg "Pmk_mc.create: no schedules";
  List.iter
    (fun (mc : Multicore.t) ->
      match Multicore.validate mc with
      | [] -> ()
      | d :: _ ->
        invalid_arg
          (Format.asprintf "Pmk_mc.create: invalid table: %a"
             Multicore.pp_diagnostic d))
    tables;
  let core_counts =
    List.map (fun (mc : Multicore.t) -> Multicore.core_count mc) tables
  in
  let cores_n = List.hd core_counts in
  if List.exists (fun n -> n <> cores_n) core_counts then
    invalid_arg "Pmk_mc.create: tables disagree on core count";
  let cores =
    Array.init cores_n (fun core ->
        Pmk.create ?initial_schedule ~partition_count
          (List.map (fun mc -> Multicore.core_view mc ~core) tables))
  in
  { cores }

let core_count t = Array.length t.cores
let schedule_count t = Pmk.schedule_count t.cores.(0)
let ticks t = Pmk.ticks t.cores.(0)
let current_schedule t = Pmk.current_schedule t.cores.(0)
let next_schedule t = Pmk.next_schedule t.cores.(0)

let request_schedule_switch t id =
  (* Broadcast; every core holds the same schedule set, so the outcomes
     coincide — report the first core's. *)
  let results =
    Array.map (fun pmk -> Pmk.request_schedule_switch pmk id) t.cores
  in
  results.(0)

let tick t = Array.map Pmk.tick t.cores

let active_partitions t = Array.map Pmk.active_partition t.cores

let core t i =
  if i < 0 || i >= core_count t then invalid_arg "Pmk_mc.core: out of range";
  t.cores.(i)
