lib/core/pmk.mli: Air_model Air_sim Format Ident Partition_id Schedule Schedule_id Time
