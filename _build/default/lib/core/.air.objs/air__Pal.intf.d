lib/core/pal.mli: Air_model Air_sim Deadline_store Ident Time
