lib/core/cluster.ml: Air_sim Array Bytes Hashtbl Heap List System Time
