lib/core/deadline_store.ml: Air_sim Format Hashtbl Int List Option Stdlib Time
