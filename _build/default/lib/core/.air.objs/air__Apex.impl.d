lib/core/apex.ml: Air_ipc Air_model Air_pos Air_sim Bytes Error Event Format Ident Intra Kernel List Partition Pmk Router Time
