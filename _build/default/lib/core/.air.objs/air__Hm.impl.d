lib/core/hm.ml: Air_model Error Hashtbl Ident List Option Partition_id
