lib/core/cluster.mli: Air_sim System Time
