lib/core/apex.mli: Air_ipc Air_model Air_pos Air_sim Error Event Format Ident Intra Kernel Partition Pmk Process Router Time
