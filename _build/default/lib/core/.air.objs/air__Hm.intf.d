lib/core/hm.mli: Air_model Error Ident Partition_id
