lib/core/pmk.ml: Air_model Air_sim Array Format Ident List Partition_id Schedule Schedule_id Stdlib Time Validate
