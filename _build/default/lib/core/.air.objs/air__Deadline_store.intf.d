lib/core/deadline_store.mli: Air_sim Format Time
