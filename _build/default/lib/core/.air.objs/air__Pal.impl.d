lib/core/pal.ml: Air_model Air_sim Deadline_store Ident List Time
