lib/core/pmk_mc.ml: Air_model Array Format List Multicore Pmk
