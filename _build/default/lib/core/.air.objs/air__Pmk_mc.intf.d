lib/core/pmk_mc.mli: Air_model Air_sim Ident Multicore Partition_id Pmk Schedule_id
