lib/spatial/mmu.ml: Array Format List Memory
