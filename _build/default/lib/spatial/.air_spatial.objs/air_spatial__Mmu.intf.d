lib/spatial/mmu.mli: Format Memory
