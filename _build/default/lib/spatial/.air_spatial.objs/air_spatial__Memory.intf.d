lib/spatial/memory.mli: Air_model Format
