lib/spatial/memory.ml: Air_model Format List Stdlib
