lib/spatial/protection.ml: Air_model List Memory Mmu Tlb
