lib/spatial/tlb.ml: Array Format Memory
