lib/spatial/protection.mli: Air_model Memory Mmu Tlb
