lib/spatial/tlb.mli: Format Memory
