(** Spatial-partitioning descriptors (paper Sect. 2.1, Fig. 3).

    Spatial partitioning requirements are described through a high-level,
    processor-independent abstraction: a set of descriptors per partition,
    primarily corresponding to the several levels of execution (application,
    operating system, AIR PMK) and to the partition's memory sections (code,
    data, stack). The {!Mmu} module maps these descriptors onto the simulated
    three-level page-based MMU. *)

(** Level of execution attempting an access. Orders privilege:
    [Pmk > Pos > Application]. *)
type exec_level = Application | Pos | Pmk

val exec_level_equal : exec_level -> exec_level -> bool
val pp_exec_level : Format.formatter -> exec_level -> unit

type section = Code | Data | Stack | Io

val section_equal : section -> section -> bool
val pp_section : Format.formatter -> section -> unit

type perms = { read : bool; write : bool; execute : bool }

val pp_perms : Format.formatter -> perms -> unit

val rwx : perms
val rw : perms
val rx : perms
val ro : perms

val default_perms : section -> perms
(** Code → rx, Data → rw, Stack → rw, Io → rw. *)

type region = {
  base : int;          (** Byte address, page aligned. *)
  size : int;          (** Bytes, page multiple. *)
  section : section;
  min_level : exec_level;
      (** Least privileged execution level allowed to use the region —
          [Application] regions are also accessible to [Pos] and [Pmk]
          (subject to [perms]); [Pmk] regions only to the PMK. *)
  perms : perms;
}

val region :
  ?min_level:exec_level -> ?perms:perms -> base:int -> size:int -> section -> region
(** [perms] defaults to {!default_perms} of the section; [min_level]
    defaults to [Application]. Raises [Invalid_argument] on non-positive
    size, negative base, or misalignment with respect to {!page_size}. *)

val page_size : int
(** 4 KiB, as in the SPARC V8 reference MMU. *)

val region_end : region -> int
(** One past the last byte. *)

val regions_overlap : region -> region -> bool

val pp_region : Format.formatter -> region -> unit

(** {1 Per-partition memory maps} *)

type map = {
  partition : Air_model.Ident.Partition_id.t;
  regions : region list;
}

val map : Air_model.Ident.Partition_id.t -> region list -> map

val contains : map -> int -> region option
(** Region of the map covering the given address, if any. *)

val validate_maps : map list -> string list
(** Human-readable diagnostics: overlapping regions within a map or across
    two partitions' maps (a spatial-separation configuration error). Empty
    list when the configuration is sound. *)

(** {1 Layout allocation}

    Development-tools support (paper Sect. 2.1): given section size
    requests, assign page-aligned, mutually disjoint address ranges. *)

type request = { req_section : section; req_size : int }

val allocate :
  ?base:int ->
  (Air_model.Ident.Partition_id.t * request list) list ->
  map list
(** Packs all requested sections into consecutive page-aligned ranges
    starting at [base] (default 0x4000_0000, leaving low memory to the
    PMK). Sizes are rounded up to whole pages. *)
