type exec_level = Application | Pos | Pmk

let exec_level_equal a b =
  match (a, b) with
  | Application, Application | Pos, Pos | Pmk, Pmk -> true
  | (Application | Pos | Pmk), _ -> false

let pp_exec_level ppf l =
  Format.pp_print_string ppf
    (match l with Application -> "app" | Pos -> "pos" | Pmk -> "pmk")

type section = Code | Data | Stack | Io

let section_equal a b =
  match (a, b) with
  | Code, Code | Data, Data | Stack, Stack | Io, Io -> true
  | (Code | Data | Stack | Io), _ -> false

let pp_section ppf s =
  Format.pp_print_string ppf
    (match s with
    | Code -> "code"
    | Data -> "data"
    | Stack -> "stack"
    | Io -> "io")

type perms = { read : bool; write : bool; execute : bool }

let pp_perms ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.execute then 'x' else '-')

let rwx = { read = true; write = true; execute = true }
let rw = { read = true; write = true; execute = false }
let rx = { read = true; write = false; execute = true }
let ro = { read = true; write = false; execute = false }

let default_perms = function
  | Code -> rx
  | Data | Stack | Io -> rw

let page_size = 4096

type region = {
  base : int;
  size : int;
  section : section;
  min_level : exec_level;
  perms : perms;
}

let region ?(min_level = Application) ?perms ~base ~size section =
  if base < 0 then invalid_arg "Memory.region: negative base";
  if size <= 0 then invalid_arg "Memory.region: non-positive size";
  if base mod page_size <> 0 then
    invalid_arg "Memory.region: base not page aligned";
  if size mod page_size <> 0 then
    invalid_arg "Memory.region: size not a page multiple";
  let perms =
    match perms with Some p -> p | None -> default_perms section
  in
  { base; size; section; min_level; perms }

let region_end r = r.base + r.size

let regions_overlap a b = a.base < region_end b && b.base < region_end a

let pp_region ppf r =
  Format.fprintf ppf "[0x%x, 0x%x) %a %a %a" r.base (region_end r)
    pp_section r.section pp_exec_level r.min_level pp_perms r.perms

type map = { partition : Air_model.Ident.Partition_id.t; regions : region list }

let map partition regions = { partition; regions }

let contains m addr =
  List.find_opt (fun r -> r.base <= addr && addr < region_end r) m.regions

let validate_maps maps =
  let diags = ref [] in
  let push fmt = Format.kasprintf (fun s -> diags := s :: !diags) fmt in
  let rec pairs = function
    | [] -> ()
    | m :: rest ->
      (* Intra-map overlaps. *)
      let rec intra = function
        | [] -> ()
        | r :: rs ->
          List.iter
            (fun r' ->
              if regions_overlap r r' then
                push "%a: overlapping regions %a and %a"
                  Air_model.Ident.Partition_id.pp m.partition pp_region r pp_region r')
            rs;
          intra rs
      in
      intra m.regions;
      (* Cross-map overlaps: spatial-separation breach. *)
      List.iter
        (fun m' ->
          List.iter
            (fun r ->
              List.iter
                (fun r' ->
                  if regions_overlap r r' then
                    push
                      "spatial separation: %a region %a overlaps %a region %a"
                      Air_model.Ident.Partition_id.pp m.partition pp_region r
                      Air_model.Ident.Partition_id.pp m'.partition pp_region r')
                m'.regions)
            m.regions)
        rest;
      pairs rest
  in
  pairs maps;
  List.rev !diags

type request = { req_section : section; req_size : int }

let round_up n = (n + page_size - 1) / page_size * page_size

let allocate ?(base = 0x4000_0000) parts =
  let cursor = ref base in
  List.map
    (fun (pid, requests) ->
      let regions =
        List.map
          (fun { req_section; req_size } ->
            let size = round_up (Stdlib.max 1 req_size) in
            let r = region ~base:!cursor ~size req_section in
            cursor := !cursor + size;
            r)
          requests
      in
      map pid regions)
    parts
