type entry = {
  context : int;
  vpn : int;
  perms : Memory.perms;
  min_level : Memory.exec_level;
}

type t = {
  slots : entry option array;
  mutable next : int;  (* FIFO replacement cursor *)
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ?(capacity = 32) () =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; hits = 0; misses = 0;
    flushes = 0 }

let lookup t ~context ~vpn =
  let n = Array.length t.slots in
  let rec go i =
    if i >= n then begin
      t.misses <- t.misses + 1;
      None
    end
    else
      match t.slots.(i) with
      | Some e when e.context = context && e.vpn = vpn ->
        t.hits <- t.hits + 1;
        Some e
      | Some _ | None -> go (i + 1)
  in
  go 0

let insert t entry =
  let n = Array.length t.slots in
  let rec existing i =
    if i >= n then None
    else
      match t.slots.(i) with
      | Some e when e.context = entry.context && e.vpn = entry.vpn -> Some i
      | Some _ | None -> existing (i + 1)
  in
  match existing 0 with
  | Some i -> t.slots.(i) <- Some entry
  | None ->
    t.slots.(t.next) <- Some entry;
    t.next <- (t.next + 1) mod n

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.flushes <- t.flushes + 1

let flush_context t ~context =
  Array.iteri
    (fun i -> function
      | Some e when e.context = context -> t.slots.(i) <- None
      | Some _ | None -> ())
    t.slots;
  t.flushes <- t.flushes + 1

type stats = { hits : int; misses : int; flushes : int }

let stats (t : t) = { hits = t.hits; misses = t.misses; flushes = t.flushes }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0

let pp_stats ppf s =
  Format.fprintf ppf "hits=%d misses=%d flushes=%d" s.hits s.misses s.flushes
