(** Process behaviour scripts.

    The prototype's partitions run mockup applications (paper Sect. 6);
    here a process body is a small program over simulated CPU time and APEX
    service calls, interpreted one tick at a time by [Air.System]. Scripts
    are plain data — the POS library defines the language, the AIR core
    executes it against the real APEX services. *)

open Air_sim

type action =
  | Compute of int
      (** Consume the given number of CPU ticks. *)
  | Periodic_wait
      (** APEX PERIODIC_WAIT: suspend until the next release point. *)
  | Timed_wait of Time.t
      (** APEX TIMED_WAIT: suspend for the given delay. *)
  | Replenish of Time.t
      (** APEX REPLENISH: postpone the deadline to now + budget. *)
  | Write_sampling of string * string
      (** Port name, message payload. *)
  | Read_sampling of string
  | Send_queuing of string * string
  | Receive_queuing of string * Time.t
      (** Port name, timeout (0 polls, {!Air_sim.Time.infinity} blocks). *)
  | Wait_semaphore of string * Time.t
  | Signal_semaphore of string
  | Wait_event of string * Time.t
  | Set_event of string
  | Reset_event of string
  | Display_blackboard of string * string
  | Clear_blackboard of string
  | Read_blackboard of string * Time.t
  | Send_buffer of string * string * Time.t
  | Receive_buffer of string * Time.t
  | Read_memory of int
      (** Load from the given address — exercises spatial partitioning. *)
  | Write_memory of int
  | Log of string
      (** One line of application output (a VITRAL window line). *)
  | Raise_application_error of string
  | Request_schedule of int
      (** APEX SET_MODULE_SCHEDULE with the given schedule index; only
          system partitions are authorized. *)
  | Log_schedule_status
      (** APEX GET_MODULE_SCHEDULE_STATUS, logged as application output. *)
  | Suspend_self of Time.t
  | Resume_process of string
  | Start_other of string
  | Stop_other of string
  | Stop_self
  | Disable_interrupts
      (** What a non-paravirtualized guest kernel might attempt; the PMK
          traps it (paper Sect. 2.5). *)
  | Lock_preemption
      (** APEX LOCK_PREEMPTION: no other process of this partition runs
          until the matching unlock; partition windows still end on time. *)
  | Unlock_preemption

type on_end =
  | Repeat  (** Restart the body — an infinite loop. *)
  | Stop    (** Process goes dormant after the last action. *)

type t = { body : action array; on_end : on_end }

val make : ?on_end:on_end -> action list -> t
(** [on_end] defaults to [Repeat]. *)

val empty : t
(** A process that immediately stops. *)

val periodic_body : action list -> t
(** The idiomatic periodic process: body followed by {!Periodic_wait},
    repeated forever. *)

val length : t -> int

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit
