open Air_sim

type action =
  | Compute of int
  | Periodic_wait
  | Timed_wait of Time.t
  | Replenish of Time.t
  | Write_sampling of string * string
  | Read_sampling of string
  | Send_queuing of string * string
  | Receive_queuing of string * Time.t
  | Wait_semaphore of string * Time.t
  | Signal_semaphore of string
  | Wait_event of string * Time.t
  | Set_event of string
  | Reset_event of string
  | Display_blackboard of string * string
  | Clear_blackboard of string
  | Read_blackboard of string * Time.t
  | Send_buffer of string * string * Time.t
  | Receive_buffer of string * Time.t
  | Read_memory of int
  | Write_memory of int
  | Log of string
  | Raise_application_error of string
  | Request_schedule of int
  | Log_schedule_status
  | Suspend_self of Time.t
  | Resume_process of string
  | Start_other of string
  | Stop_other of string
  | Stop_self
  | Disable_interrupts
  | Lock_preemption
  | Unlock_preemption

type on_end = Repeat | Stop

type t = { body : action array; on_end : on_end }

let make ?(on_end = Repeat) actions =
  { body = Array.of_list actions; on_end }

let empty = { body = [||]; on_end = Stop }

let periodic_body actions =
  { body = Array.of_list (actions @ [ Periodic_wait ]); on_end = Repeat }

let length t = Array.length t.body

let pp_action ppf = function
  | Compute n -> Format.fprintf ppf "compute %d" n
  | Periodic_wait -> Format.pp_print_string ppf "periodic-wait"
  | Timed_wait d -> Format.fprintf ppf "timed-wait %a" Time.pp d
  | Replenish b -> Format.fprintf ppf "replenish %a" Time.pp b
  | Write_sampling (p, _) -> Format.fprintf ppf "write-sampling %s" p
  | Read_sampling p -> Format.fprintf ppf "read-sampling %s" p
  | Send_queuing (p, _) -> Format.fprintf ppf "send-queuing %s" p
  | Receive_queuing (p, d) ->
    Format.fprintf ppf "receive-queuing %s timeout=%a" p Time.pp d
  | Wait_semaphore (s, d) ->
    Format.fprintf ppf "wait-semaphore %s timeout=%a" s Time.pp d
  | Signal_semaphore s -> Format.fprintf ppf "signal-semaphore %s" s
  | Wait_event (e, d) ->
    Format.fprintf ppf "wait-event %s timeout=%a" e Time.pp d
  | Set_event e -> Format.fprintf ppf "set-event %s" e
  | Reset_event e -> Format.fprintf ppf "reset-event %s" e
  | Display_blackboard (b, _) -> Format.fprintf ppf "display-blackboard %s" b
  | Clear_blackboard b -> Format.fprintf ppf "clear-blackboard %s" b
  | Read_blackboard (b, d) ->
    Format.fprintf ppf "read-blackboard %s timeout=%a" b Time.pp d
  | Send_buffer (b, _, d) ->
    Format.fprintf ppf "send-buffer %s timeout=%a" b Time.pp d
  | Receive_buffer (b, d) ->
    Format.fprintf ppf "receive-buffer %s timeout=%a" b Time.pp d
  | Read_memory a -> Format.fprintf ppf "read-memory 0x%x" a
  | Write_memory a -> Format.fprintf ppf "write-memory 0x%x" a
  | Log s -> Format.fprintf ppf "log %S" s
  | Raise_application_error s -> Format.fprintf ppf "raise-error %S" s
  | Request_schedule i -> Format.fprintf ppf "request-schedule %d" i
  | Log_schedule_status -> Format.pp_print_string ppf "log-schedule-status"
  | Suspend_self d -> Format.fprintf ppf "suspend-self timeout=%a" Time.pp d
  | Resume_process p -> Format.fprintf ppf "resume %s" p
  | Start_other p -> Format.fprintf ppf "start %s" p
  | Stop_other p -> Format.fprintf ppf "stop %s" p
  | Stop_self -> Format.pp_print_string ppf "stop-self"
  | Disable_interrupts -> Format.pp_print_string ppf "disable-interrupts"
  | Lock_preemption -> Format.pp_print_string ppf "lock-preemption"
  | Unlock_preemption -> Format.pp_print_string ppf "unlock-preemption"

let pp ppf t =
  Format.fprintf ppf "@[<v>%a%s@]"
    (Format.pp_print_list pp_action)
    (Array.to_list t.body)
    (match t.on_end with Repeat -> " (repeat)" | Stop -> " (stop)")
