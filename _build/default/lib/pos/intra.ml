open Air_sim

type discipline = Fifo | Priority

let pp_discipline ppf d =
  Format.pp_print_string ppf
    (match d with Fifo -> "fifo" | Priority -> "priority")

type semaphore = {
  mutable count : int;
  maximum : int;
  sem_discipline : discipline;
}

type event_obj = { mutable up : bool }

type blackboard = {
  mutable message : bytes option;
  bb_max_size : int;
}

type buffer = {
  depth : int;
  buf_max_size : int;
  buf_discipline : discipline;
  queue : bytes Queue.t;
}

type t = {
  kernel : Kernel.t;
  semaphores : (string, semaphore) Hashtbl.t;
  events : (string, event_obj) Hashtbl.t;
  blackboards : (string, blackboard) Hashtbl.t;
  buffers : (string, buffer) Hashtbl.t;
  mailboxes : bytes option array;
      (* Per-process delivery slot for messages satisfied while blocked. *)
  pending_sends : (string * bytes) option array;
      (* Message a sender is blocked trying to push into a full buffer. *)
}

let create kernel =
  let n = Kernel.process_count kernel in
  { kernel;
    semaphores = Hashtbl.create 8;
    events = Hashtbl.create 8;
    blackboards = Hashtbl.create 8;
    buffers = Hashtbl.create 8;
    mailboxes = Array.make (Stdlib.max n 1) None;
    pending_sends = Array.make (Stdlib.max n 1) None }

type create_error = Already_exists of string | Bad_parameter of string

let pp_create_error ppf = function
  | Already_exists n -> Format.fprintf ppf "object %s already exists" n
  | Bad_parameter m -> Format.fprintf ppf "bad parameter: %s" m

let fresh table name v =
  if Hashtbl.mem table name then Error (Already_exists name)
  else begin
    Hashtbl.replace table name v;
    Ok ()
  end

let create_semaphore t ~name ~initial ~maximum discipline =
  if maximum <= 0 then Error (Bad_parameter "semaphore maximum must be positive")
  else if initial < 0 || initial > maximum then
    Error (Bad_parameter "semaphore initial value out of range")
  else
    fresh t.semaphores name
      { count = initial; maximum; sem_discipline = discipline }

let create_event t ~name = fresh t.events name { up = false }

let create_blackboard t ~name ~max_message_size =
  if max_message_size <= 0 then
    Error (Bad_parameter "blackboard max message size must be positive")
  else fresh t.blackboards name { message = None; bb_max_size = max_message_size }

let create_buffer t ~name ~depth ~max_message_size discipline =
  if depth <= 0 then Error (Bad_parameter "buffer depth must be positive")
  else if max_message_size <= 0 then
    Error (Bad_parameter "buffer max message size must be positive")
  else
    fresh t.buffers name
      { depth;
        buf_max_size = max_message_size;
        buf_discipline = discipline;
        queue = Queue.create () }

type outcome =
  [ `Done | `Blocked | `Unavailable | `No_such_object | `Message_too_large ]

let pp_outcome ppf (o : outcome) =
  Format.pp_print_string ppf
    (match o with
    | `Done -> "done"
    | `Blocked -> "blocked"
    | `Unavailable -> "unavailable"
    | `No_such_object -> "no-such-object"
    | `Message_too_large -> "message-too-large")

let waiters t discipline pred =
  match discipline with
  | Fifo -> Kernel.waiters_fifo t.kernel pred
  | Priority -> Kernel.waiters_priority t.kernel pred

let on_semaphore name = function
  | Kernel.On_semaphore n -> String.equal n name
  | _ -> false

let on_event name = function
  | Kernel.On_event n -> String.equal n name
  | _ -> false

let on_blackboard name = function
  | Kernel.On_blackboard n -> String.equal n name
  | _ -> false

let on_buffer name = function
  | Kernel.On_buffer n -> String.equal n name
  | _ -> false

(* Semaphores *)

let wait_semaphore t ~now ~process ~name ~timeout : outcome =
  match Hashtbl.find_opt t.semaphores name with
  | None -> `No_such_object
  | Some s ->
    if s.count > 0 then begin
      s.count <- s.count - 1;
      `Done
    end
    else if timeout = Time.zero then `Unavailable
    else begin
      Kernel.block t.kernel ~now process (Kernel.On_semaphore name) ~timeout;
      `Blocked
    end

let signal_semaphore t ~now ~name : outcome =
  match Hashtbl.find_opt t.semaphores name with
  | None -> `No_such_object
  | Some s -> (
    match waiters t s.sem_discipline (on_semaphore name) with
    | q :: _ ->
      (* The semaphore is handed directly to the woken waiter. *)
      Kernel.wake t.kernel ~now q ~timed_out:false;
      `Done
    | [] ->
      if s.count >= s.maximum then `Unavailable
      else begin
        s.count <- s.count + 1;
        `Done
      end)

let semaphore_value t ~name =
  Option.map (fun s -> s.count) (Hashtbl.find_opt t.semaphores name)

(* Events *)

let wait_event t ~now ~process ~name ~timeout : outcome =
  match Hashtbl.find_opt t.events name with
  | None -> `No_such_object
  | Some e ->
    if e.up then `Done
    else if timeout = Time.zero then `Unavailable
    else begin
      Kernel.block t.kernel ~now process (Kernel.On_event name) ~timeout;
      `Blocked
    end

let set_event t ~now ~name : outcome =
  match Hashtbl.find_opt t.events name with
  | None -> `No_such_object
  | Some e ->
    e.up <- true;
    List.iter
      (fun q -> Kernel.wake t.kernel ~now q ~timed_out:false)
      (waiters t Fifo (on_event name));
    `Done

let reset_event t ~name : outcome =
  match Hashtbl.find_opt t.events name with
  | None -> `No_such_object
  | Some e ->
    e.up <- false;
    `Done

let event_is_up t ~name =
  Option.map (fun e -> e.up) (Hashtbl.find_opt t.events name)

(* Blackboards *)

let display_blackboard t ~now ~name msg : outcome =
  match Hashtbl.find_opt t.blackboards name with
  | None -> `No_such_object
  | Some b ->
    if Bytes.length msg > b.bb_max_size then `Message_too_large
    else begin
      b.message <- Some (Bytes.copy msg);
      List.iter
        (fun q ->
          t.mailboxes.(q) <- Some (Bytes.copy msg);
          Kernel.wake t.kernel ~now q ~timed_out:false)
        (waiters t Fifo (on_blackboard name));
      `Done
    end

let clear_blackboard t ~name : outcome =
  match Hashtbl.find_opt t.blackboards name with
  | None -> `No_such_object
  | Some b ->
    b.message <- None;
    `Done

let read_blackboard t ~now ~process ~name ~timeout =
  match Hashtbl.find_opt t.blackboards name with
  | None -> `No_such_object
  | Some b -> (
    match b.message with
    | Some msg -> `Read (Bytes.copy msg)
    | None ->
      if timeout = Time.zero then `Unavailable
      else begin
        Kernel.block t.kernel ~now process (Kernel.On_blackboard name)
          ~timeout;
        `Blocked
      end)

(* Buffers *)

(* A waiting reader is distinguished from a waiting sender by its pending
   send slot: senders blocked on a full buffer carry their message there. *)
let buffer_readers t = List.filter (fun q -> t.pending_sends.(q) = None)

let send_buffer t ~now ~process ~name msg ~timeout : outcome =
  match Hashtbl.find_opt t.buffers name with
  | None -> `No_such_object
  | Some b ->
    if Bytes.length msg > b.buf_max_size then `Message_too_large
    else begin
      let readers =
        buffer_readers t (waiters t b.buf_discipline (on_buffer name))
      in
      match readers with
      | q :: _ ->
        t.mailboxes.(q) <- Some (Bytes.copy msg);
        Kernel.wake t.kernel ~now q ~timed_out:false;
        `Done
      | [] ->
        if Queue.length b.queue < b.depth then begin
          Queue.push (Bytes.copy msg) b.queue;
          `Done
        end
        else if timeout = Time.zero then `Unavailable
        else begin
          t.pending_sends.(process) <- Some (name, Bytes.copy msg);
          Kernel.block t.kernel ~now process (Kernel.On_buffer name) ~timeout;
          `Blocked
        end
    end

let receive_buffer t ~now ~process ~name ~timeout =
  match Hashtbl.find_opt t.buffers name with
  | None -> `No_such_object
  | Some b ->
    if not (Queue.is_empty b.queue) then begin
      let msg = Queue.pop b.queue in
      (* Space freed: admit the longest-blocked sender, if any. *)
      let senders =
        List.filter
          (fun q -> t.pending_sends.(q) <> None)
          (waiters t b.buf_discipline (on_buffer name))
      in
      (match senders with
      | q :: _ -> (
        match t.pending_sends.(q) with
        | Some (_, pending) ->
          Queue.push pending b.queue;
          t.pending_sends.(q) <- None;
          Kernel.wake t.kernel ~now q ~timed_out:false
        | None -> ())
      | [] -> ());
      `Read msg
    end
    else if timeout = Time.zero then `Unavailable
    else begin
      Kernel.block t.kernel ~now process (Kernel.On_buffer name) ~timeout;
      `Blocked
    end

let buffer_occupancy t ~name =
  Option.map (fun b -> Queue.length b.queue) (Hashtbl.find_opt t.buffers name)

let deliver t ~process msg = t.mailboxes.(process) <- Some (Bytes.copy msg)

let take_delivery t ~process =
  let msg = t.mailboxes.(process) in
  t.mailboxes.(process) <- None;
  msg

let clear_mailboxes t =
  Array.fill t.mailboxes 0 (Array.length t.mailboxes) None;
  Array.fill t.pending_sends 0 (Array.length t.pending_sends) None

let reset t =
  Hashtbl.reset t.semaphores;
  Hashtbl.reset t.events;
  Hashtbl.reset t.blackboards;
  Hashtbl.reset t.buffers;
  clear_mailboxes t
