lib/pos/intra.mli: Air_sim Format Kernel Time
