lib/pos/intra.ml: Air_sim Array Bytes Format Hashtbl Kernel List Option Queue Stdlib String Time
