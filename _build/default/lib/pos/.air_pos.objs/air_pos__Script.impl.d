lib/pos/script.ml: Air_sim Array Format Time
