lib/pos/script.mli: Air_sim Format Time
