lib/pos/kernel.ml: Air_model Air_sim Array Format Ident Int List Process String Time
