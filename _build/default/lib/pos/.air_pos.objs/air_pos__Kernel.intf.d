lib/pos/kernel.mli: Air_model Air_sim Format Ident Process Time
