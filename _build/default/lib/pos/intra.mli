(** Intrapartition communication objects: buffers, blackboards, semaphores
    and events (ARINC 653 Part 1).

    These objects live entirely inside one partition's containment domain;
    the APEX layer of the AIR core calls into them, and they in turn block
    and wake processes through the partition's {!Kernel}. Blocking calls
    return [`Blocked] — the caller (the script interpreter) re-issues no
    action; the kernel wakes the process when the condition is met or the
    timeout expires, and delivered messages are picked up from the process
    mailbox with {!take_delivery}. *)

open Air_sim

type discipline =
  | Fifo      (** Waiters served in blocking order. *)
  | Priority  (** Waiters served by current priority, FIFO among equals. *)

val pp_discipline : Format.formatter -> discipline -> unit

type t

val create : Kernel.t -> t

(** {1 Object creation} *)

type create_error =
  | Already_exists of string
  | Bad_parameter of string

val pp_create_error : Format.formatter -> create_error -> unit

val create_semaphore :
  t ->
  name:string ->
  initial:int ->
  maximum:int ->
  discipline ->
  (unit, create_error) result

val create_event : t -> name:string -> (unit, create_error) result

val create_blackboard :
  t -> name:string -> max_message_size:int -> (unit, create_error) result

val create_buffer :
  t ->
  name:string ->
  depth:int ->
  max_message_size:int ->
  discipline ->
  (unit, create_error) result

(** {1 Operations}

    Common outcome conventions: [`Blocked] means the calling process has
    been moved to the waiting state by the kernel; [`Unavailable] is the
    polling outcome (timeout = 0 semantics decided by the APEX layer);
    [`No_such_object] maps to APEX INVALID_CONFIG. *)

type outcome =
  [ `Done
  | `Blocked
  | `Unavailable
  | `No_such_object
  | `Message_too_large ]

val pp_outcome : Format.formatter -> outcome -> unit

val wait_semaphore :
  t -> now:Time.t -> process:int -> name:string -> timeout:Time.t -> outcome

val signal_semaphore : t -> now:Time.t -> name:string -> outcome
(** [`Unavailable] when the count is already at its maximum. *)

val semaphore_value : t -> name:string -> int option

val wait_event :
  t -> now:Time.t -> process:int -> name:string -> timeout:Time.t -> outcome

val set_event : t -> now:Time.t -> name:string -> outcome
(** Wakes every process waiting on the event. *)

val reset_event : t -> name:string -> outcome

val event_is_up : t -> name:string -> bool option

val display_blackboard :
  t -> now:Time.t -> name:string -> bytes -> outcome
(** Overwrites the message and wakes all processes waiting to read. *)

val clear_blackboard : t -> name:string -> outcome

val read_blackboard :
  t ->
  now:Time.t ->
  process:int ->
  name:string ->
  timeout:Time.t ->
  [ outcome | `Read of bytes ]

val send_buffer :
  t ->
  now:Time.t ->
  process:int ->
  name:string ->
  bytes ->
  timeout:Time.t ->
  outcome
(** If readers wait, the message is handed to the longest-waiting (or
    highest-priority) one directly; otherwise it is enqueued; a full buffer
    blocks the sender, whose message is delivered when space frees. *)

val receive_buffer :
  t ->
  now:Time.t ->
  process:int ->
  name:string ->
  timeout:Time.t ->
  [ outcome | `Read of bytes ]

val buffer_occupancy : t -> name:string -> int option

val take_delivery : t -> process:int -> bytes option
(** Message delivered to the process while it was blocked (buffer receive
    or blackboard read satisfied by a later send/display). Reading clears
    the mailbox. *)

val deliver : t -> process:int -> bytes -> unit
(** Deposit a message in the process' mailbox — used by the system layer
    when a queuing-port message satisfies a blocked receiver. The bytes are
    copied. *)

val reset : t -> unit
(** Partition cold restart: drop every object and mailbox. *)

val clear_mailboxes : t -> unit
(** Partition warm restart: objects (and their contents) survive, but
    per-process delivery state is dropped. *)
