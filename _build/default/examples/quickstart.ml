(* Quickstart: build a two-partition AIR module from scratch, validate its
   scheduling table, run it for a few major time frames and inspect what
   happened.

   Run with: dune exec examples/quickstart.exe *)

open Air_model
open Air_pos
open Air
open Ident

let () =
  (* 1. Partitions and their processes (the system model of paper Sect. 3:
     each process is ⟨T, D, p, C⟩). *)
  let control = Partition_id.make 0 and payload = Partition_id.make 1 in
  let control_partition =
    Partition.make ~id:control ~name:"CONTROL"
      [ Process.spec
          ~periodicity:(Process.Periodic 500)
          ~time_capacity:500 ~wcet:120 ~base_priority:5 "control-loop" ]
  in
  let payload_partition =
    Partition.make ~id:payload ~name:"PAYLOAD"
      [ Process.spec
          ~periodicity:(Process.Periodic 1000)
          ~time_capacity:1000 ~wcet:300 ~base_priority:8 "camera" ]
  in

  (* 2. Behaviour: scripts stand in for the C task bodies of the paper's
     prototype. *)
  let control_script =
    Script.periodic_body
      [ Script.Compute 120; Script.Log "control cycle done" ]
  in
  let payload_script =
    Script.periodic_body [ Script.Compute 300; Script.Log "frame captured" ]
  in

  (* 3. A partition scheduling table (paper eq. (18)): MTF 1000, CONTROL
     gets 200 ticks per 500-tick cycle, PAYLOAD 400 per 1000. *)
  let schedule =
    Schedule.make
      ~id:(Schedule_id.make 0)
      ~name:"cruise" ~mtf:1000
      ~requirements:
        [ { Schedule.partition = control; cycle = 500; duration = 200 };
          { Schedule.partition = payload; cycle = 1000; duration = 400 } ]
      [ { Schedule.partition = control; offset = 0; duration = 200 };
        { Schedule.partition = payload; offset = 200; duration = 400 };
        { Schedule.partition = control; offset = 600; duration = 200 } ]
  in

  (* 4. Verify the integrator-defined parameters (eqs. (21)–(23)) before
     running anything. *)
  (match Validate.validate schedule with
  | [] -> print_endline "schedule valid: eqs. (21)-(23) hold"
  | diags ->
    List.iter
      (fun d -> Format.printf "DIAGNOSTIC: %a@." Validate.pp_diagnostic d)
      diags;
    exit 1);
  print_string (Air_vitral.Gantt.of_schedule schedule);

  (* 5. Compose and run the module. *)
  let system =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup control_partition [ control_script ];
             System.partition_setup payload_partition [ payload_script ] ]
         ~schedules:[ schedule ] ())
  in
  System.run_mtfs system 3;

  (* 6. Observe. *)
  Format.printf "@.ran %a ticks, %d deadline violations@." Air_sim.Time.pp
    (System.now system + 1)
    (List.length (System.violations system));
  let occupancy =
    Air_vitral.Gantt.occupancy
      ~partitions:(System.partition_ids system)
      ~from:0 ~until:1000 (System.activity system)
  in
  List.iter
    (fun (owner, ticks) ->
      Format.printf "  %s held the processor for %a ticks per MTF@."
        (match owner with
        | None -> "idle"
        | Some p -> Format.asprintf "%a" Partition_id.pp p)
        Air_sim.Time.pp ticks)
    occupancy;
  Format.printf "@.application output:@.";
  Air_sim.Trace.iter
    (fun t ev ->
      match ev with
      | Event.Application_output { partition; line } ->
        Format.printf "  [%a] %a: %s@." Air_sim.Time.pp t Partition_id.pp
          partition line
      | _ -> ())
    (System.trace system)
