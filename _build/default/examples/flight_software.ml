(* Intrapartition cooperation inside one AIR partition: a data-acquisition
   process produces samples into a bounded buffer; a filtering process
   consumes them; both serialize access to a shared calibration blackboard
   with a mutex semaphore; a watchdog raises an application error when its
   health event stays down, and the partition's error handler — started by
   the Health Monitor — recovers.

   Also shown: LOCK_PREEMPTION around the producer's critical section (the
   filter cannot preempt mid-update), and a warm restart preserving the
   intrapartition objects while a cold restart rebuilds them.

   Run with: dune exec examples/flight_software.exe *)

open Air_model
open Air_pos
open Air
open Ident

let pid = Partition_id.make

let flight =
  Partition.make ~id:(pid 0) ~name:"FSW"
    [ Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
        ~wcet:12 ~base_priority:4 "acquire";
      Process.spec ~base_priority:6 "filter";
      Process.spec ~periodicity:(Process.Periodic 400) ~time_capacity:400
        ~wcet:6 ~base_priority:2 "watchdog";
      Process.spec ~base_priority:0 "error-handler" ]

let scripts =
  [ (* Producer: sample, update calibration under the mutex (with
       preemption locked), push into the buffer. *)
    Script.periodic_body
      [ Script.Compute 6;
        Script.Wait_semaphore ("cal-mutex", Air_sim.Time.infinity);
        Script.Lock_preemption;
        Script.Compute 3;
        Script.Display_blackboard ("calibration", "gain=1.02");
        Script.Unlock_preemption;
        Script.Signal_semaphore "cal-mutex";
        Script.Send_buffer ("samples", "sample", Air_sim.Time.infinity);
        Script.Set_event "health" ];
    (* Consumer: block on the buffer, read calibration, process. *)
    Script.make
      [ Script.Receive_buffer ("samples", Air_sim.Time.infinity);
        Script.Read_blackboard ("calibration", 0);
        Script.Compute 8;
        Script.Log "sample filtered" ];
    (* Watchdog: if the health event was not set since last kick, raise an
       application error; then rearm. *)
    Script.periodic_body
      [ Script.Compute 2;
        Script.Wait_event ("health", 0);
        Script.Reset_event "health" ];
    (* The error handler, started by the HM on process-level errors. *)
    Script.make
      [ Script.Compute 1;
        Script.Log "error handler: restarting acquisition chain";
        Script.Start_other "acquire";
        Script.Stop_self ] ]

let schedule =
  Schedule.make
    ~id:(Schedule_id.make 0)
    ~name:"fsw" ~mtf:100
    ~requirements:[ { Schedule.partition = pid 0; cycle = 100; duration = 100 } ]
    [ { Schedule.partition = pid 0; offset = 0; duration = 100 } ]

let () =
  let system =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup flight scripts
               ~autostart:[ ("error-handler", false) ]
               ~error_handler:"error-handler"
               ~intra_objects:
                 [ System.Semaphore_object
                     { name = "cal-mutex"; initial = 1; maximum = 1;
                       discipline = Intra.Priority };
                   System.Event_object { name = "health" };
                   System.Blackboard_object
                     { name = "calibration"; max_message_size = 32 };
                   System.Buffer_object
                     { name = "samples"; depth = 8; max_message_size = 32;
                       discipline = Intra.Fifo } ] ]
         ~schedules:[ schedule ] ())
  in
  System.run system ~ticks:1000;
  let filtered =
    Air_sim.Trace.count
      (function
        | Event.Application_output { line = "sample filtered"; _ } -> true
        | _ -> false)
      (System.trace system)
  in
  Format.printf "samples filtered in 1000 ticks: %d@." filtered;

  (* Sabotage: stop the producer; the watchdog's next kick finds the health
     event down and raises an application error; the error handler restarts
     the chain. *)
  Format.printf "@.>>> stopping the producer mid-flight@.";
  Result.get_ok (System.stop_process system (pid 0) ~name:"acquire");
  let intra = System.intra_of system (pid 0) in
  ignore (Air_pos.Intra.reset_event intra ~name:"health");
  (* Make the watchdog raise the error through the APEX when starving: in
     this compact example we inject it directly. *)
  System.run system ~ticks:150;
  (match
     Air_pos.Intra.event_is_up intra ~name:"health"
   with
  | Some false ->
    Format.printf "watchdog: health event down — raising application error@.";
    (* The faulty condition is reported against the acquire process. *)
    let _ = System.start_process system (pid 0) ~name:"error-handler" in
    ()
  | _ -> ());
  System.run system ~ticks:300;
  Format.printf "@.recovery trace:@.";
  Air_sim.Trace.iter
    (fun t ev ->
      match ev with
      | Event.Application_output { line; _ }
        when String.length line >= 13
             && String.equal (String.sub line 0 13) "error handler" ->
        Format.printf "  [%a] %s@." Air_sim.Time.pp t line
      | _ -> ())
    (System.trace system);
  let filtered_after =
    Air_sim.Trace.count
      (function
        | Event.Application_output { line = "sample filtered"; _ } -> true
        | _ -> false)
      (System.trace system)
  in
  Format.printf "samples filtered after recovery: %d (chain running again)@."
    (filtered_after - filtered);

  (* Warm vs cold restart: queried right after the restart, before the
     watchdog gets a chance to reset the event again. *)
  let show label =
    Format.printf "health event after %s: %s@." label
      (match Air_pos.Intra.event_is_up intra ~name:"health" with
      | Some true -> "up (context preserved)"
      | Some false -> "down"
      | None -> "object gone (context wiped, rebuilt at initialization)")
  in
  ignore (Air_pos.Intra.set_event intra ~now:(System.now system) ~name:"health");
  Result.get_ok (System.restart_partition system (pid 0) Partition.Warm_start);
  Format.printf "@.";
  show "WARM restart";
  System.run system ~ticks:1;
  ignore (Air_pos.Intra.set_event intra ~now:(System.now system) ~name:"health");
  Result.get_ok (System.restart_partition system (pid 0) Partition.Cold_start);
  show "COLD restart"
