examples/flight_software.mli:
