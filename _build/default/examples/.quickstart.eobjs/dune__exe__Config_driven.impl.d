examples/config_driven.ml: Air Air_config Air_model Air_sim Air_vitral Array Event Format List Sys Validate
