examples/quickstart.ml: Air Air_model Air_pos Air_sim Air_vitral Event Format Ident List Partition Partition_id Process Schedule Schedule_id Script System Validate
