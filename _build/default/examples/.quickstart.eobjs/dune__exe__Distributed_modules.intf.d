examples/distributed_modules.mli:
