examples/mixed_criticality.ml: Air Air_model Air_pos Air_sim Air_vitral Error Event Format Ident Kernel List Partition Partition_id Process Schedule Schedule_id Script System
