examples/deadline_monitor.ml: Air Air_analysis Air_model Air_pos Air_sim Array Error Event Format Hm Ident Kernel List Partition Partition_id Pmk Process Process_id Schedule Schedule_id Script System
