examples/quickstart.mli:
