examples/deadline_monitor.mli:
