examples/satellite_mission.ml: Air Air_model Air_sim Air_vitral Air_workload Format Ident List Process_id Result System
