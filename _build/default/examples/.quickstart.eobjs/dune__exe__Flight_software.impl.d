examples/flight_software.ml: Air Air_model Air_pos Air_sim Event Format Ident Intra Partition Partition_id Process Result Schedule Schedule_id Script String System
