examples/satellite_mission.mli:
