examples/config_driven.mli:
