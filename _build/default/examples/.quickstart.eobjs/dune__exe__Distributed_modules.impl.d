examples/distributed_modules.ml: Air Air_ipc Air_model Air_pos Air_sim Array Cluster Event Format Ident List Partition Partition_id Process Schedule Schedule_id Script System
