(* The paper's Sect. 6 prototype, end to end: four partitions (AOCS, OBDH,
   TTC, Payload) under the two PSTs of Fig. 8, with the faulty process
   injected on P1 and mode-based schedule switches — rendered through
   VITRAL-style text windows (Fig. 9).

   Run with: dune exec examples/satellite_mission.exe *)

open Air_model
open Air
open Ident

let () =
  let system = Air_workload.Satellite.make () in

  (* VITRAL: one window per partition plus two windows observing AIR
     components (paper Fig. 9). *)
  let console =
    Air_vitral.Console.create
      ~partitions:
        [ (Air_workload.Satellite.p1, "AOCS (P1)");
          (Air_workload.Satellite.p2, "OBDH (P2)");
          (Air_workload.Satellite.p3, "TTC (P3)");
          (Air_workload.Satellite.p4, "Payload (P4)") ]
      ()
  in

  print_endline "=== Partition scheduling tables (paper Fig. 8) ===";
  print_string (Air_vitral.Gantt.of_schedule Air_workload.Satellite.schedule_1);
  print_string (Air_vitral.Gantt.of_schedule Air_workload.Satellite.schedule_2);

  (* Phase 1: one clean MTF under χ1. *)
  System.run_mtfs system 1;

  (* Phase 2: inject the faulty process on P1 (the prototype's keyboard
     action) and run two more MTFs. *)
  print_endline "\n>>> injecting faulty process on P1";
  Air_workload.Satellite.inject_fault system;
  System.run_mtfs system 2;

  (* Phase 3: request χ2; the switch is honoured at the end of the MTF. *)
  print_endline ">>> requesting switch to χ2";
  Result.get_ok (System.request_schedule system Air_workload.Satellite.chi2);
  System.run_mtfs system 2;

  (* Phase 4: back to χ1. *)
  print_endline ">>> requesting switch back to χ1";
  Result.get_ok (System.request_schedule system Air_workload.Satellite.chi1);
  System.run_mtfs system 2;

  Air_vitral.Console.feed_trace console (System.trace system);
  print_endline "\n=== VITRAL (paper Fig. 9) ===";
  print_endline (Air_vitral.Console.render console);

  print_endline "\n=== Observed processor occupation, first MTF of each phase ===";
  let partitions = System.partition_ids system in
  List.iteri
    (fun i from ->
      Format.printf "phase %d (ticks %d..%d):@." (i + 1) from (from + 1300);
      print_string
        (Air_vitral.Gantt.of_activity ~partitions ~from ~until:(from + 1300)
           (System.activity system)))
    [ 0; 1300; 3900; 6500 ];

  let violations = System.violations system in
  Format.printf "@.%d deadline violations detected, all on %s:@."
    (List.length violations)
    Air_workload.Satellite.faulty_process_name;
  List.iter
    (fun (t, process, deadline) ->
      Format.printf "  detected t=%a: %a missed deadline %a@." Air_sim.Time.pp
        t Process_id.pp process Air_sim.Time.pp deadline)
    violations
