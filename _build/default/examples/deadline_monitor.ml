(* Process deadline violation monitoring in depth (paper Sect. 5):

   - a process whose deadline expires while its partition is inactive is
     caught at the partition's next dispatch (the paper's optimal detection
     latency given the PST);
   - the configured health-monitoring recovery action decides what happens
     next — here we compare "ignore", "log twice then stop" and "restart".

   Run with: dune exec examples/deadline_monitor.exe *)

open Air_model
open Air_pos
open Air
open Ident

let pid = Partition_id.make

(* One partition with a window at the start of each 1000-tick MTF; its
   process overruns a 150-tick deadline, which expires in the partition's
   1800-tick blackout. *)
let build hm_tables =
  let victim = pid 0 and idle_owner = pid 1 in
  let p0 =
    Partition.make ~id:victim ~name:"VICTIM"
      [ Process.spec ~periodicity:(Process.Periodic 1000) ~time_capacity:150
          ~wcet:250 ~base_priority:5 "overrunner" ]
  in
  let p1 =
    Partition.make ~id:idle_owner ~name:"OTHER"
      [ Process.spec ~periodicity:(Process.Periodic 1000) ~time_capacity:1000
          ~wcet:100 ~base_priority:5 "steady" ]
  in
  let schedule =
    Schedule.make ~id:(Schedule_id.make 0) ~name:"sparse" ~mtf:1000
      ~requirements:
        [ { Schedule.partition = victim; cycle = 1000; duration = 200 };
          { Schedule.partition = idle_owner; cycle = 1000; duration = 300 } ]
      [ { Schedule.partition = victim; offset = 0; duration = 200 };
        { Schedule.partition = idle_owner; offset = 200; duration = 300 } ]
  in
  System.create
    (System.config ~hm_tables
       ~partitions:
         [ System.partition_setup p0
             [ Script.periodic_body [ Script.Compute 250 ] ];
           System.partition_setup p1
             [ Script.periodic_body [ Script.Compute 100 ] ] ]
       ~schedules:[ schedule ] ())

let describe name system =
  System.run_mtfs system 5;
  Format.printf "@.--- policy: %s ---@." name;
  List.iter
    (fun (t, process, deadline) ->
      Format.printf
        "  violation of %a: deadline %a, detected t=%a (latency %a)@."
        Process_id.pp process Air_sim.Time.pp deadline Air_sim.Time.pp t
        Air_sim.Time.pp (t - deadline))
    (System.violations system);
  Air_sim.Trace.iter
    (fun t ev ->
      match ev with
      | Event.Hm_process_action _ ->
        Format.printf "  [%a] %a@." Air_sim.Time.pp t Event.pp ev
      | _ -> ())
    (System.trace system);
  let k = System.kernel_of system (pid 0) in
  Format.printf "  final state of overrunner: %a@." Process.pp_state
    (Kernel.state k 0)

let () =
  Format.printf
    "The overrunner's deadline (release + 150) always expires inside its@.";
  Format.printf
    "partition's 800-tick blackout; Algorithm 3 catches it at the next@.";
  Format.printf "dispatch — detection latency = next window start − deadline.@.";

  describe "ignore (log only, ARINC 653 default)" (build Hm.default_tables);

  describe "log twice, then stop the faulty process"
    (build
       { Hm.default_tables with
         Hm.process_actions =
           [ (pid 0, Error.Deadline_missed,
              Error.Log_then (2, Error.Stop_process)) ] });

  describe "restart the process from its entry point"
    (build
       { Hm.default_tables with
         Hm.process_actions =
           [ (pid 0, Error.Deadline_missed, Error.Restart_process) ] });

  (* The analytical bound of the detection latency: the partition's longest
     blackout (E6). *)
  let schedule =
    match (build Hm.default_tables, 0) with
    | s, _ -> List.nth (Array.to_list (Pmk.schedules (System.pmk s))) 0
  in
  Format.printf "@.longest blackout of VICTIM per the PST: %a ticks@."
    Air_sim.Time.pp
    (Air_analysis.Supply.longest_blackout schedule (pid 0))
