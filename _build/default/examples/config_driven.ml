(* A whole AIR module defined in the integration configuration language and
   loaded at run time — the workflow of an actual system integrator: write
   the configuration tables, validate them, run.

   Run with: dune exec examples/config_driven.exe [path/to/config.air]
   (defaults to examples/configs/leo_satellite.air, looked up relative to
   the current directory and the repository root). *)

open Air_model

let default_candidates =
  [ "examples/configs/leo_satellite.air";
    "../examples/configs/leo_satellite.air";
    "configs/leo_satellite.air" ]

let find_config () =
  if Array.length Sys.argv > 1 then Some Sys.argv.(1)
  else List.find_opt Sys.file_exists default_candidates

let () =
  let path =
    match find_config () with
    | Some p -> p
    | None ->
      prerr_endline "cannot find leo_satellite.air; pass a path explicitly";
      exit 1
  in
  Format.printf "loading %s@." path;
  let cfg =
    match Air_config.Loader.load_file path with
    | Ok cfg -> cfg
    | Error e ->
      Format.eprintf "configuration error: %s@." e;
      exit 1
  in
  (* The loader builds model values; validate the tables like an
     integration tool would. *)
  (match Validate.validate_set cfg.Air.System.schedules with
  | [] -> Format.printf "schedules: eqs. (21)-(23) hold@."
  | diags ->
    List.iter
      (fun d -> Format.printf "DIAGNOSTIC: %a@." Validate.pp_diagnostic d)
      diags;
    exit 1);
  List.iter
    (fun s -> print_string (Air_vitral.Gantt.of_schedule s))
    cfg.Air.System.schedules;

  let system = Air.System.create cfg in
  (* The MGMT partition's mode-manager script switches to "downlink" around
     t=8000 and back to "nominal" later in the run. *)
  Air.System.run system ~ticks:16000;

  Format.printf "@.%d deadline violations, halted: %b@."
    (List.length (Air.System.violations system))
    (Air.System.halted system <> None);
  Format.printf "schedule switches:@.";
  Air_sim.Trace.iter
    (fun t ev ->
      match ev with
      | Event.Schedule_switch _ | Event.Schedule_switch_request _ ->
        Format.printf "  [%a] %a@." Air_sim.Time.pp t Event.pp ev
      | _ -> ())
    (Air.System.trace system);
  Format.printf "@.last application output lines:@.";
  let outputs =
    Air_sim.Trace.filter
      (fun _ ev ->
        match ev with Event.Application_output _ -> true | _ -> false)
      (Air.System.trace system)
  in
  let tail = List.filteri (fun i _ -> i >= List.length outputs - 8) outputs in
  List.iter
    (fun (t, ev) -> Format.printf "  [%a] %a@." Air_sim.Time.pp t Event.pp ev)
    tail
