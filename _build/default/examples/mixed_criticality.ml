(* Integration of a generic non-real-time operating system beside hard
   real-time partitions (paper Sect. 2.5): an embedded-Linux-like partition
   runs a round-robin scheduler and even attempts to disable the system
   clock interrupts — the PMK's paravirtualized handlers trap the attempt,
   and the RT partitions' timeliness is untouched.

   Run with: dune exec examples/mixed_criticality.exe *)

open Air_model
open Air_pos
open Air
open Ident

let pid = Partition_id.make

let () =
  let rt =
    Partition.make ~id:(pid 0) ~name:"AOCS-RT"
      [ Process.spec ~periodicity:(Process.Periodic 250) ~time_capacity:250
          ~wcet:60 ~base_priority:3 "control";
        Process.spec ~periodicity:(Process.Periodic 500) ~time_capacity:500
          ~wcet:40 ~base_priority:7 "guidance" ]
  in
  let linux =
    Partition.make ~id:(pid 1) ~name:"LINUX"
      [ Process.spec ~base_priority:10 "scripting-engine";
        Process.spec ~base_priority:10 "telemetry-archiver";
        Process.spec ~base_priority:10 "rogue" ]
  in
  let schedule =
    Schedule.make ~id:(Schedule_id.make 0) ~name:"mixed" ~mtf:500
      ~requirements:
        [ { Schedule.partition = pid 0; cycle = 250; duration = 110 };
          { Schedule.partition = pid 1; cycle = 500; duration = 240 } ]
      [ { Schedule.partition = pid 0; offset = 0; duration = 110 };
        { Schedule.partition = pid 1; offset = 110; duration = 140 };
        { Schedule.partition = pid 0; offset = 250; duration = 110 };
        { Schedule.partition = pid 1; offset = 360; duration = 100 } ]
  in
  let system =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup rt
               [ Script.periodic_body
                   [ Script.Compute 60; Script.Log "attitude nominal" ];
                 Script.periodic_body
                   [ Script.Compute 40; Script.Log "guidance update" ] ];
             (* The generic POS runs round-robin with a 10-tick quantum —
                priorities are ignored, everyone makes progress. *)
             System.partition_setup linux
               ~policy:(Kernel.Round_robin { quantum = 10 })
               [ Script.make
                   [ Script.Compute 200; Script.Log "cron batch done" ];
                 Script.make
                   [ Script.Compute 35; Script.Log "archive rotated";
                     Script.Timed_wait 300 ];
                 (* A non-paravirtualized guest might try this. *)
                 Script.make
                   [ Script.Compute 15; Script.Disable_interrupts;
                     Script.Timed_wait 400 ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run_mtfs system 6;

  Format.printf "RT deadline violations: %d (temporal partitioning held)@."
    (List.length (System.violations system));
  Format.printf "paravirtualization traps:@.";
  Air_sim.Trace.iter
    (fun t ev ->
      match ev with
      | Event.Hm_error { code = Error.Illegal_request; detail; _ } ->
        Format.printf "  [%a] trapped: %s@." Air_sim.Time.pp t detail
      | _ -> ())
    (System.trace system);

  Format.printf "@.Linux partition progress under round-robin:@.";
  let k = System.kernel_of system (pid 1) in
  for q = 0 to Kernel.process_count k - 1 do
    Format.printf "  %s: %a@." (Kernel.spec k q).Process.name Process.pp_state
      (Kernel.state k q)
  done;

  Format.printf "@.processor shares over one MTF:@.";
  List.iter
    (fun (owner, ticks) ->
      Format.printf "  %-8s %a ticks@."
        (match owner with
        | None -> "idle"
        | Some p -> Format.asprintf "%a" Partition_id.pp p)
        Air_sim.Time.pp ticks)
    (Air_vitral.Gantt.occupancy
       ~partitions:(System.partition_ids system)
       ~from:500 ~until:1000 (System.activity system));

  print_string
    (Air_vitral.Gantt.of_activity
       ~partitions:(System.partition_ids system)
       ~from:500 ~until:1000 (System.activity system))
