(* Regeneration of every table/figure-level artefact of the paper (see
   DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

   Usage: experiments [e1 e2 … e11 | all]            (default: all) *)

open Air_model
open Air
open Ident

let section id title =
  Format.printf "@.=== %s — %s ===@." (String.uppercase_ascii id) title

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  section "e1" "Fig. 8: the prototype's partition scheduling tables";
  List.iter
    (fun s ->
      Format.printf "%a@." Schedule.pp s;
      print_string (Air_vitral.Gantt.of_schedule s);
      match Validate.validate s with
      | [] -> Format.printf "validation: eqs. (21)-(23) hold@."
      | ds ->
        List.iter
          (fun d -> Format.printf "DIAGNOSTIC: %a@." Validate.pp_diagnostic d)
          ds)
    [ Air_workload.Satellite.schedule_1; Air_workload.Satellite.schedule_2 ]

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  section "e2" "eq. (25): instantiations of the eq. (23) condition";
  List.iter
    (fun (s : Schedule.t) ->
      List.iter
        (fun (r : Schedule.requirement) ->
          for k = 0 to (s.Schedule.mtf / r.Schedule.cycle) - 1 do
            Format.printf "%t@." (fun ppf ->
                Validate.explain_requirement ppf s r.Schedule.partition ~k)
          done)
        s.Schedule.requirements)
    [ Air_workload.Satellite.schedule_1; Air_workload.Satellite.schedule_2 ]

(* ------------------------------------------------------------------ E3 *)

let e3 () =
  section "e3"
    "Sect. 6 prototype: fault injection, detection at each dispatch, \
     switches without extra violations";
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 1;
  Format.printf "MTF 1 clean: %d violations@." (List.length (System.violations s));
  Air_workload.Satellite.inject_fault s;
  Format.printf "faulty process injected on P1 at t=%a@." Air_sim.Time.pp
    (System.now s);
  System.run_mtfs s 2;
  Result.get_ok (System.request_schedule s Air_workload.Satellite.chi2);
  System.run_mtfs s 2;
  Result.get_ok (System.request_schedule s Air_workload.Satellite.chi1);
  System.run_mtfs s 2;
  Format.printf "@.%-12s %-14s %-12s %s@." "detected at" "process" "deadline"
    "dispatch of P1?";
  List.iter
    (fun (t, p, d) ->
      Format.printf "%-12d %-14s %-12d %s@." t
        (Format.asprintf "%a" Process_id.pp p)
        d
        (if t mod 1300 = 0 then "yes (window start)" else "mid-window"))
    (System.violations s);
  let switches =
    Air_sim.Trace.filter (fun _ -> Event.is_schedule_switch)
      (System.trace s)
  in
  List.iter
    (fun (t, ev) -> Format.printf "[%d] %a@." t Event.pp ev)
    switches;
  let outside =
    List.filter
      (fun (_, p, _) ->
        not
          (Partition_id.equal (Process_id.partition p)
             Air_workload.Satellite.p1))
      (System.violations s)
  in
  Format.printf
    "violations outside P1: %d (paper: switches introduce no violations \
     other than the injected one)@."
    (List.length outside)

(* ------------------------------------------------------------------ E4 *)

let time_it f =
  (* Median-of-5 of a tight loop; Bechamel gives the publication-grade
     numbers (bench/main.exe) — this is the quick in-harness view. *)
  let runs =
    List.init 5 (fun _ ->
        let n = 200_000 in
        let start = Sys.time () in
        for _ = 1 to n do
          f ()
        done;
        (Sys.time () -. start) /. float_of_int n *. 1e9)
  in
  Air_sim.Stats.median (Array.of_list runs)

let e4 () =
  section "e4"
    "Sect. 4.3: Partition Scheduler tick cost (best case = 2 computations)";
  let fresh () =
    Pmk.create ~partition_count:4
      [ Air_workload.Satellite.schedule_1; Air_workload.Satellite.schedule_2 ]
  in
  (* Best/frequent case: no preemption point reached. The satellite PST has
     7 points per 1300 ticks, so ~99.5% of ticks take the short path. *)
  let pmk = fresh () in
  let best = time_it (fun () -> ignore (Pmk.tick pmk)) in
  Format.printf "average tick (mostly best case): %.1f ns@." best;
  (* Worst case with a switch pending at every MTF boundary. *)
  let pmk = fresh () in
  let flip = ref true in
  let with_switches =
    time_it (fun () ->
        ignore (Pmk.tick pmk);
        if Pmk.mtf_position pmk = 1299 then begin
          flip := not !flip;
          ignore
            (Pmk.request_schedule_switch pmk
               (if !flip then Air_workload.Satellite.chi1
                else Air_workload.Satellite.chi2))
        end)
  in
  Format.printf "average tick with a switch every MTF: %.1f ns@."
    with_switches;
  Format.printf
    "mode-based schedules add only MTF-boundary work — the per-tick paths \
     differ by %.1f%%@."
    ((with_switches -. best) /. best *. 100.0)

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  section "e5"
    "Sect. 5.3: deadline-store ablation (sorted list vs AVL vs pairing heap)";
  Format.printf "%-14s %8s %14s %14s %14s@." "impl" "n" "register(ns)"
    "earliest(ns)" "churn(ns)";
  List.iter
    (fun impl ->
      List.iter
        (fun n ->
          let rng = Air_sim.Rng.create 42 in
          let store = Deadline_store.create impl in
          for p = 0 to n - 1 do
            Deadline_store.register store ~process:p (Air_sim.Rng.int rng 100000)
          done;
          let p = ref 0 in
          let register =
            time_it (fun () ->
                Deadline_store.register store ~process:!p
                  (Air_sim.Rng.int rng 100000);
                p := (!p + 1) mod n)
          in
          let earliest =
            time_it (fun () -> ignore (Deadline_store.earliest store))
          in
          (* The ISR-path churn: check earliest, remove it, re-register —
             what Algorithm 3 plus the APEX re-arm amounts to. *)
          let churn =
            time_it (fun () ->
                match Deadline_store.earliest store with
                | Some (proc, d) ->
                  Deadline_store.remove_earliest store;
                  Deadline_store.register store ~process:proc (d + 1000)
                | None -> ())
          in
          Format.printf "%-14s %8d %14.1f %14.1f %14.1f@."
            (Format.asprintf "%a" Deadline_store.pp_impl impl)
            n register earliest churn)
        [ 4; 16; 64; 256 ])
    Deadline_store.all_impls;
  Format.printf
    "paper claim: with typically small process counts, the linked list's \
     O(1) earliest retrieval wins inside the ISR@."

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  section "e6"
    "Detection latency of violations occurring while the partition is \
     inactive";
  (* One partition with a single window [0, 200) per 1000-tick MTF. Sweep
     the deadline's position over the MTF and compare the measured
     detection instant with the analytic one (next service after the
     deadline). *)
  let victim = Partition_id.make 0 in
  let schedule =
    Schedule.make ~id:(Schedule_id.make 0) ~name:"sparse" ~mtf:1000
      ~requirements:[ { Schedule.partition = victim; cycle = 1000; duration = 200 } ]
      [ { Schedule.partition = victim; offset = 0; duration = 200 } ]
  in
  Format.printf "%-18s %-18s %-18s %s@." "deadline offset" "detected at"
    "latency" "analytic bound";
  let latencies = ref [] in
  List.iter
    (fun capacity ->
      let p =
        Partition.make ~id:victim ~name:"V"
          [ Process.spec
              ~periodicity:(Process.Periodic 1000)
              ~time_capacity:capacity ~wcet:1000 ~base_priority:1 "spin" ]
      in
      let s =
        System.create
          (System.config
             ~partitions:
               [ System.partition_setup p
                   [ Air_pos.Script.make [ Air_pos.Script.Compute 100000 ] ] ]
             ~schedules:[ schedule ] ())
      in
      System.run s ~ticks:2500;
      match System.violations s with
      | (t, _, d) :: _ ->
        let latency = t - d in
        latencies := float_of_int latency :: !latencies;
        (* Analytic: the deadline expires at offset d mod 1000; detection
           at the next window start, or the next tick if inside a window. *)
        (* Detection needs a tick strictly after the deadline with the
           partition active: inside the window (offset + 1 < 200) it is the
           very next tick; otherwise the next window start. *)
        let off = d mod 1000 in
        let analytic = if off + 1 < 200 then 1 else 1000 - off in
        Format.printf "%-18d %-18d %-18d %d@." d t latency analytic
      | [] -> Format.printf "capacity %d: no violation@." capacity)
    [ 50; 150; 199; 250; 400; 600; 800; 950; 999 ];
  let arr = Array.of_list !latencies in
  if Array.length arr > 0 then
    Format.printf
      "max observed latency %.0f ≤ longest blackout %a (+1) — the \
       methodology is optimal w.r.t. detection latency given the PST@."
      (Array.fold_left Float.max 0.0 arr)
      Air_sim.Time.pp
      (Air_analysis.Supply.longest_blackout schedule victim)

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  section "e7" "Mode-based schedules across mission phases";
  let s = Air_workload.Mission.make () in
  let partitions = System.partition_ids s in
  let phase_spans = ref [] in
  List.iteri
    (fun i (name, id) ->
      if i > 0 then Result.get_ok (System.request_schedule s id);
      let from = System.now s + 1 in
      System.run_mtfs s 3;
      phase_spans := (name, from, System.now s + 1) :: !phase_spans)
    Air_workload.Mission.phases;
  Format.printf "%-10s" "phase";
  List.iter
    (fun p -> Format.printf "%10s" (Format.asprintf "%a" Partition_id.pp p))
    partitions;
  Format.printf "%10s@." "idle";
  List.iter
    (fun (name, from, until) ->
      let occ =
        Air_vitral.Gantt.occupancy ~partitions ~from ~until
          (System.activity s)
      in
      Format.printf "%-10s" name;
      List.iter
        (fun p ->
          let ticks =
            Option.value ~default:0 (List.assoc_opt (Some p) occ)
          in
          Format.printf "%9.1f%%"
            (float_of_int ticks /. float_of_int (until - from) *. 100.0))
        partitions;
      let idle = Option.value ~default:0 (List.assoc_opt None occ) in
      Format.printf "%9.1f%%@."
        (float_of_int idle /. float_of_int (until - from) *. 100.0))
    (List.rev !phase_spans);
  Format.printf "violations during phase transitions: %d@."
    (List.length (System.violations s))

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  section "e8"
    "Fault containment: AIR two-level TSP vs single-level priority \
     preemptive (related work [4])";
  Format.printf "%-6s %-12s %-22s %-22s@." "util" "seed"
    "single-level misses/starved" "TSP misses outside P1";
  List.iter
    (fun utilization ->
      List.iter
        (fun seed ->
          let rng = Air_sim.Rng.create seed in
          let gen =
            Air_workload.Taskgen.generate rng ~n_partitions:3
              ~procs_per_partition:2 ~utilization
          in
          let gen = Air_workload.Taskgen.with_babbling gen ~partition:0 in
          (* Single level: all processes compete directly. *)
          let tasks =
            List.concat_map
              (fun ((p : Partition.t), _) ->
                Array.to_list
                  (Array.map
                     (fun (spec : Process.spec) ->
                       Air_analysis.Single_level.task
                         ~babbling:
                           (String.equal spec.Process.name
                              Air_workload.Taskgen.babbling_name)
                         ~owner:p.Partition.id spec)
                     p.Partition.processes))
              gen.Air_workload.Taskgen.partitions
          in
          let sl = Air_analysis.Single_level.simulate tasks ~horizon:20000 in
          (* TSP: same tasks inside AIR partitions under a synthesized PST. *)
          let schedule =
            match
              Air_analysis.Synthesis.synthesize
                gen.Air_workload.Taskgen.requirements
            with
            | Ok s -> s
            | Error f ->
              Format.kasprintf failwith "synthesis: %a"
                Air_analysis.Synthesis.pp_failure f
          in
          let system =
            System.create
              (System.config
                 ~partitions:
                   (List.map
                      (fun (p, scripts) -> System.partition_setup p scripts)
                      gen.Air_workload.Taskgen.partitions)
                 ~schedules:[ schedule ] ())
          in
          System.run system ~ticks:20000;
          let faulty_pid = Partition_id.make 0 in
          let tsp_outside =
            List.length
              (List.filter
                 (fun (_, p, _) ->
                   not (Partition_id.equal (Process_id.partition p) faulty_pid))
                 (System.violations system))
          in
          Format.printf "%-6.2f %-12d %10d / %-11d %-22d@." utilization seed
            sl.Air_analysis.Single_level.total_misses
            sl.Air_analysis.Single_level.starved_tasks tsp_outside)
        [ 1; 2; 3 ])
    [ 0.3; 0.5; 0.7 ];
  Format.printf
    "shape: the babbling process starves every lower-priority task under \
     single-level scheduling; AIR confines all damage to its own \
     partition (0 misses outside P1)@."

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  section "e9" "Interpartition communication through the APEX ports";
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 10;
  let stats = Air_ipc.Router.stats (System.router s) in
  Format.printf
    "10 MTFs (13000 ticks): sent=%d received=%d bytes-copied=%d overflows=%d@."
    stats.Air_ipc.Router.messages_sent stats.Air_ipc.Router.messages_received
    stats.Air_ipc.Router.bytes_copied stats.Air_ipc.Router.overflows;
  (* Overflow behaviour: a fast producer against a depth-8 queue with a
     consumer that never drains. *)
  let producer = Partition_id.make 0 and sink = Partition_id.make 1 in
  let net =
    { Air_ipc.Port.ports =
        [ Air_ipc.Port.queuing_port ~name:"OUT" ~partition:producer
            ~direction:Air_ipc.Port.Source ~depth:8 ~max_message_size:16;
          Air_ipc.Port.queuing_port ~name:"IN" ~partition:sink
            ~direction:Air_ipc.Port.Destination ~depth:8 ~max_message_size:16 ];
      channels = [ { Air_ipc.Port.source = "OUT"; destinations = [ "IN" ] } ] }
  in
  let p0 =
    Partition.make ~id:producer ~name:"FAST"
      [ Process.spec ~periodicity:(Process.Periodic 10) ~time_capacity:10
          ~wcet:2 ~base_priority:1 "pump" ]
  in
  let p1 =
    Partition.make ~id:sink ~name:"SLOW"
      [ Process.spec ~base_priority:1 "sleeper" ]
  in
  let schedule =
    Schedule.make ~id:(Schedule_id.make 0) ~name:"drain" ~mtf:100
      ~requirements:
        [ { Schedule.partition = producer; cycle = 10; duration = 5 };
          { Schedule.partition = sink; cycle = 100; duration = 5 } ]
      (List.init 10 (fun i ->
           { Schedule.partition = producer; offset = i * 10; duration = 5 })
      @ [ { Schedule.partition = sink; offset = 55; duration = 5 } ])
  in
  let sys =
    System.create
      (System.config ~network:net
         ~partitions:
           [ System.partition_setup p0
               [ Air_pos.Script.periodic_body
                   [ Air_pos.Script.Compute 1;
                     Air_pos.Script.Send_queuing ("OUT", "m") ] ];
             System.partition_setup p1
               [ Air_pos.Script.make [ Air_pos.Script.Timed_wait 100000 ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run sys ~ticks:1000;
  let stats = Air_ipc.Router.stats (System.router sys) in
  Format.printf
    "overload (producer 1 msg / 10 ticks, consumer asleep, depth 8): \
     sent=%d delivered-to-queue=%d overflows=%d pending=%d@."
    stats.Air_ipc.Router.messages_sent
    (stats.Air_ipc.Router.messages_sent - stats.Air_ipc.Router.overflows)
    stats.Air_ipc.Router.overflows
    (Air_ipc.Router.pending (System.router sys) ~port:"IN")

(* ----------------------------------------------------------------- E10 *)

let e10 () =
  section "e10" "Spatial partitioning: cross-partition accesses are denied \
                 and confined";
  let rng = Air_sim.Rng.create 7 in
  let victim = Partition_id.make 0 and attacker = Partition_id.make 1 in
  let p0 =
    Partition.make ~id:victim ~name:"VICTIM"
      [ Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
          ~wcet:10 ~base_priority:1 "steady" ]
  in
  let p1 =
    Partition.make ~id:attacker ~name:"PROBE"
      [ Process.spec ~base_priority:1 "prober" ]
  in
  let schedule =
    Schedule.make ~id:(Schedule_id.make 0) ~name:"half" ~mtf:100
      ~requirements:
        [ { Schedule.partition = victim; cycle = 100; duration = 50 };
          { Schedule.partition = attacker; cycle = 100; duration = 50 } ]
      [ { Schedule.partition = victim; offset = 0; duration = 50 };
        { Schedule.partition = attacker; offset = 50; duration = 50 } ]
  in
  (* The prober touches addresses drawn over both partitions' regions. *)
  let touches =
    List.init 64 (fun _ ->
        let base = 0x4000_0000 + Air_sim.Rng.int rng (6 * 16384) in
        Air_pos.Script.Read_memory base)
  in
  let script =
    Air_pos.Script.make
      (List.concat_map (fun t -> [ Air_pos.Script.Compute 1; t ]) touches)
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup p0
               [ Air_pos.Script.periodic_body [ Air_pos.Script.Compute 10 ] ];
             System.partition_setup p1 [ script ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:600;
  let granted =
    Air_sim.Trace.count
      (function Event.Memory_access { granted = true; _ } -> true | _ -> false)
      (System.trace s)
  and denied =
    Air_sim.Trace.count
      (function Event.Memory_access { granted = false; _ } -> true | _ -> false)
      (System.trace s)
  in
  Format.printf "probe accesses: %d granted, %d denied@." granted denied;
  Format.printf "TLB: %a@." Air_spatial.Tlb.pp_stats
    (Air_spatial.Protection.tlb_stats (System.protection s));
  Format.printf "HM partition-level memory violations recorded: %d@."
    (Air_sim.Trace.count
       (function
         | Event.Hm_error
             { code = Error.Memory_violation; level = Error.Partition_level; _ }
           ->
           true
         | _ -> false)
       (System.trace s));
  Format.printf "victim partition violations: %d (fault confined)@."
    (List.length
       (List.filter
          (fun (_, p, _) -> Partition_id.equal (Process_id.partition p) victim)
          (System.violations s)))

(* ----------------------------------------------------------------- E11 *)

let e11_batch ~tighten =
  let total = ref 0
  and rta_ok = ref 0
  and rta_ok_sim_miss = ref 0
  and rta_bad = ref 0
  and rta_bad_sim_miss = ref 0 in
  List.iter
    (fun seed ->
      let rng = Air_sim.Rng.create seed in
      let gen =
        Air_workload.Taskgen.generate rng ~n_partitions:3
          ~procs_per_partition:3 ~utilization:0.75
      in
      let requirements =
        if not tighten then gen.Air_workload.Taskgen.requirements
        else
          (* Shrink every partition's duration by a third: the PST still
             validates, but some task sets no longer fit their supply. *)
          List.map
            (fun (r : Schedule.requirement) ->
              { r with
                Schedule.duration = Stdlib.max 1 (r.Schedule.duration * 2 / 3) })
            gen.Air_workload.Taskgen.requirements
      in
      match Air_analysis.Synthesis.synthesize requirements with
      | Error _ -> ()
      | Ok schedule ->
        let system =
          System.create
            (System.config
               ~partitions:
                 (List.map
                    (fun (p, scripts) -> System.partition_setup p scripts)
                    gen.Air_workload.Taskgen.partitions)
               ~schedules:[ schedule ] ())
        in
        System.run system ~ticks:30000;
        let violations = System.violations system in
        List.iter
          (fun ((p : Partition.t), _) ->
            let verdicts =
              Air_analysis.Rta.analyze schedule p.Partition.id
                p.Partition.processes
            in
            List.iter
              (fun (v : Air_analysis.Rta.verdict) ->
                incr total;
                let missed =
                  List.exists
                    (fun (_, proc, _) ->
                      Partition_id.equal (Process_id.partition proc)
                        p.Partition.id
                      && Process_id.index proc = v.Air_analysis.Rta.process)
                    violations
                in
                if v.Air_analysis.Rta.schedulable then begin
                  incr rta_ok;
                  if missed then incr rta_ok_sim_miss
                end
                else begin
                  incr rta_bad;
                  if missed then incr rta_bad_sim_miss
                end)
              verdicts)
          gen.Air_workload.Taskgen.partitions)
    [ 11; 22; 33; 44; 55; 66; 77; 88 ];
  Format.printf "  processes analyzed: %d@." !total;
  Format.printf
    "  RTA schedulable: %d — of which missed in simulation: %d (soundness: \
     must be 0)@."
    !rta_ok !rta_ok_sim_miss;
  Format.printf
    "  RTA unschedulable: %d — of which missed in simulation: %d (the gap \
     is RTA pessimism)@."
    !rta_bad !rta_bad_sim_miss

let e11 () =
  section "e11"
    "Schedulability analysis (SBF + RTA) vs simulation ground truth";
  Format.printf "generated supply (ample):@.";
  e11_batch ~tighten:false;
  Format.printf "tightened supply (duration × 2/3):@.";
  e11_batch ~tighten:true

(* ----------------------------------------------------------------- E12 *)

let e12 () =
  section "e12"
    "Multicore partition windows (paper future work iv): validation and \
     parallel dispatch";
  let pid = Partition_id.make and sid = Schedule_id.make in
  let w partition offset duration = { Schedule.partition; offset; duration } in
  let q partition cycle duration = { Schedule.partition; cycle; duration } in
  (* A dual-core table: AOCS pinned to core 0; payload and comms share
     core 1; FDIR migrates between cores in disjoint windows. *)
  let table =
    Multicore.make ~id:(sid 0) ~name:"dual" ~mtf:1000
      ~requirements:
        [ q (pid 0) 500 350; q (pid 1) 1000 500; q (pid 2) 1000 250;
          q (pid 3) 500 100 ]
      [ [ w (pid 0) 0 350; w (pid 3) 350 100; w (pid 0) 500 350;
          w (pid 3) 850 100 ];
        (* P4 migrates: its core-1 window [750,850) is disjoint in time
           from its core-0 windows — the validator enforces this. *)
        [ w (pid 1) 0 500; w (pid 2) 500 250; w (pid 3) 750 100 ] ]
  in
  (match Multicore.validate table with
  | [] -> Format.printf "table valid (incl. cross-core self-overlap rule)@."
  | ds ->
    List.iter
      (fun d -> Format.printf "DIAGNOSTIC: %a@." Multicore.pp_diagnostic d)
      ds);
  Format.printf "%a@." Multicore.pp table;
  Format.printf "aggregate utilization: %.2f of %d cores@."
    (Multicore.utilization table) (Multicore.core_count table);
  (* FDIR (P4) gets 100 per 500-cycle on core 0 plus a window on core 1:
     cross-core supply. *)
  Format.printf "P4 supply per cycle (cross-core): k=0 → %d, k=1 → %d@."
    (Multicore.cycle_supply table (pid 3) ~k:0)
    (Multicore.cycle_supply table (pid 3) ~k:1);
  (* Run the broadcast PMK and chart both cores. *)
  let pmk = Pmk_mc.create ~partition_count:4 [ table ] in
  let switches = Array.make 2 [] in
  for _ = 0 to 999 do
    let outcomes = Pmk_mc.tick pmk in
    Array.iteri
      (fun core o ->
        match o.Pmk.context_switch with
        | Some (_, to_) ->
          switches.(core) <- (Pmk_mc.ticks pmk, to_) :: switches.(core)
        | None -> ())
      outcomes
  done;
  Array.iteri
    (fun core history ->
      Format.printf "core %d:@." core;
      print_string
        (Air_vitral.Gantt.of_activity
           ~partitions:[ pid 0; pid 1; pid 2; pid 3 ]
           ~from:0 ~until:1000 (List.rev history)))
    switches;
  (* The validator at work: the same table with FDIR's lanes overlapping. *)
  let bad =
    Multicore.make ~id:(sid 0) ~name:"bad" ~mtf:1000
      ~requirements:[ q (pid 3) 500 100 ]
      [ [ w (pid 3) 350 100 ]; [ w (pid 3) 400 100 ] ]
  in
  List.iter
    (fun d -> Format.printf "rejected: %a@." Multicore.pp_diagnostic d)
    (Multicore.validate bad)

(* ----------------------------------------------------------------- E13 *)

let e13 () =
  section "e13"
    "Distributed modules: interpartition communication over a simulated \
     bus (paper Sect. 2.1, physically separated partitions)";
  let pid = Partition_id.make and sid = Schedule_id.make in
  let w partition offset duration = { Schedule.partition; offset; duration } in
  let q partition cycle duration = { Schedule.partition; cycle; duration } in
  let sensor_module () =
    let sensor = pid 0 in
    let network =
      { Air_ipc.Port.ports =
          [ Air_ipc.Port.queuing_port ~name:"TM_SRC" ~partition:sensor
              ~direction:Air_ipc.Port.Source ~depth:8 ~max_message_size:64;
            Air_ipc.Port.queuing_port ~name:"TM_GW" ~partition:sensor
              ~direction:Air_ipc.Port.Destination ~depth:8
              ~max_message_size:64 ];
        channels =
          [ { Air_ipc.Port.source = "TM_SRC"; destinations = [ "TM_GW" ] } ] }
    in
    let p =
      Partition.make ~id:sensor ~name:"SENSOR"
        [ Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
            ~wcet:5 ~base_priority:5 "sample" ]
    in
    let schedule =
      Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:100
        ~requirements:[ q sensor 100 100 ]
        [ w sensor 0 100 ]
    in
    System.create
      (System.config ~network
         ~partitions:
           [ System.partition_setup p
               [ Air_pos.Script.periodic_body
                   [ Air_pos.Script.Compute 5;
                     Air_pos.Script.Send_queuing
                       ("TM_SRC", "telemetry-frame-0123456789") ] ] ]
         ~schedules:[ schedule ] ())
  in
  let ground_module () =
    let ground = pid 0 in
    let network =
      { Air_ipc.Port.ports =
          [ Air_ipc.Port.queuing_port ~name:"TM_IN" ~partition:ground
              ~direction:Air_ipc.Port.Destination ~depth:8
              ~max_message_size:64 ];
        channels = [] }
    in
    let p =
      Partition.make ~id:ground ~name:"GROUND"
        [ Process.spec ~base_priority:5 "downlink" ]
    in
    let schedule =
      Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:100
        ~requirements:[ q ground 100 100 ]
        [ w ground 0 100 ]
    in
    System.create
      (System.config ~network
         ~partitions:
           [ System.partition_setup p
               [ Air_pos.Script.make
                   [ Air_pos.Script.Receive_queuing
                       ("TM_IN", Air_sim.Time.infinity);
                     Air_pos.Script.Log "rx" ] ] ]
         ~schedules:[ schedule ] ())
  in
  Format.printf "%-12s %-12s %-12s %-16s %s@." "latency" "bytes/tick"
    "delivered" "mean e2e delay" "(send → receive, 26-byte frames)";
  List.iter
    (fun (latency, bytes_per_tick) ->
      let cluster =
        Cluster.create
          ~bus:{ Cluster.latency; bytes_per_tick }
          ~links:
            [ Cluster.link ~from_module:0 ~from_port:"TM_GW" ~to_module:1
                ~to_port:"TM_IN" () ]
          [ sensor_module (); ground_module () ]
      in
      Cluster.run cluster ~ticks:3000;
      let sensor = (Cluster.systems cluster).(0) in
      let ground = (Cluster.systems cluster).(1) in
      let sends =
        List.filter_map
          (fun (t, ev) ->
            match ev with
            | Event.Port_send { port = "TM_SRC"; _ } -> Some t
            | _ -> None)
          (Air_sim.Trace.to_list (System.trace sensor))
      in
      let receipts =
        List.filter_map
          (fun (t, ev) ->
            match ev with
            | Event.Application_output { line = "rx"; _ } -> Some t
            | _ -> None)
          (Air_sim.Trace.to_list (System.trace ground))
      in
      let delays =
        List.map2 (fun s r -> float_of_int (r - s))
          (List.filteri (fun i _ -> i < List.length receipts) sends)
          receipts
      in
      let mean =
        if delays = [] then nan
        else List.fold_left ( +. ) 0.0 delays /. float_of_int (List.length delays)
      in
      Format.printf "%-12d %-12d %-12d %-16.1f@." latency bytes_per_tick
        (List.length receipts) mean)
    [ (0, 64); (4, 16); (50, 16); (4, 1); (200, 2) ];
  Format.printf
    "end-to-end delay tracks latency + size/bandwidth (+1 tick gateway \
     drain, +receiver dispatch); the application is agnostic of the \
     transport, as the paper requires@."

(* ----------------------------------------------------------------- E14 *)

let e14 () =
  section "e14"
    "Acceptance ratio vs partition supply: hierarchical RTA and simulation \
     over random task sets";
  Format.printf "%-10s %-24s %-24s %s@." "supply" "RTA-schedulable procs"
    "miss-free in simulation"
    "(20 seeded sets each; 3 partitions x 3 procs, util 0.75)";
  List.iter
    (fun percent ->
      let rta_ok = ref 0 and sim_ok = ref 0 and total = ref 0 in
      for seed = 1 to 20 do
        let rng = Air_sim.Rng.create (seed * 7919) in
        let gen =
          Air_workload.Taskgen.generate rng ~n_partitions:3
            ~procs_per_partition:3 ~utilization:0.75
        in
        let requirements =
          List.map
            (fun (r : Schedule.requirement) ->
              { r with
                Schedule.duration =
                  Stdlib.max 1 (r.Schedule.duration * percent / 100) })
            gen.Air_workload.Taskgen.requirements
        in
        match Air_analysis.Synthesis.synthesize requirements with
        | Error _ -> ()
        | Ok schedule ->
          let system =
            System.create
              (System.config
                 ~partitions:
                   (List.map
                      (fun (p, scripts) -> System.partition_setup p scripts)
                      gen.Air_workload.Taskgen.partitions)
                 ~schedules:[ schedule ] ())
          in
          System.run system ~ticks:20000;
          let violations = System.violations system in
          List.iter
            (fun ((p : Partition.t), _) ->
              let verdicts =
                Air_analysis.Rta.analyze schedule p.Partition.id
                  p.Partition.processes
              in
              List.iter
                (fun (v : Air_analysis.Rta.verdict) ->
                  incr total;
                  if v.Air_analysis.Rta.schedulable then incr rta_ok;
                  let missed =
                    List.exists
                      (fun (_, proc, _) ->
                        Partition_id.equal (Process_id.partition proc)
                          p.Partition.id
                        && Process_id.index proc = v.Air_analysis.Rta.process)
                      violations
                  in
                  if not missed then incr sim_ok)
                verdicts)
            gen.Air_workload.Taskgen.partitions
      done;
      Format.printf "%-10s %10d / %-11d %10d / %-11d@."
        (Printf.sprintf "%d%%" percent)
        !rta_ok !total !sim_ok !total)
    [ 100; 90; 80; 70; 60; 50 ];
  Format.printf
    "the RTA curve lower-bounds the simulation curve (analysis is sound \
     and conservative); both degrade as the windows shrink towards the \
     task sets' raw demand@."

(* ------------------------------------------------------------------ -- *)

let all =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: ((_ :: _) as args) when not (List.mem "all" args) -> args
    | _ -> List.map fst all
  in
  List.iter
    (fun id ->
      match List.assoc_opt id all with
      | Some f -> f ()
      | None ->
        Format.eprintf "unknown experiment %s (known: %s)@." id
          (String.concat " " (List.map fst all));
        exit 1)
    requested
