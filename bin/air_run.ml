(* air_run — run a configured AIR module and report what happened.

   Loads a configuration document, simulates it for the requested number of
   clock ticks, and prints the summary an integrator cares about: deadline
   violations, health-monitoring events, schedule switches, processor
   occupation, and (optionally) the tail of the event trace. *)

open Cmdliner
open Air_model

let export_trace trace path =
  Out_channel.with_open_text path (fun oc ->
      let ppf = Format.formatter_of_out_channel oc in
      Air_sim.Trace.iter
        (fun t ev -> Format.fprintf ppf "%d\t%a@." t Event.pp ev)
        trace;
      Format.pp_print_flush ppf ())

(* Resolve a flow's origin (module, port index) to the declared port name
   through the module's router, for the flows table. *)
let port_name_of systems ~module_id ~port =
  if module_id < 0 || module_id >= Array.length systems then None
  else
    List.assoc_opt port
      (Air_ipc.Router.port_names (Air.System.router systems.(module_id)))

let run_cluster path ticks trace_json flows =
  (* Observability exports need every module instrumented: a flight
     recorder for spans and a causal tracker for flow arrows, unless the
     module's own document already configured them. *)
  let instrument _ (cfg : Air.System.config) =
    let cfg =
      if cfg.Air.System.recorder = None then
        { cfg with Air.System.recorder = Some (Air_obs.Span.create ()) }
      else cfg
    in
    if cfg.Air.System.causal = None then
      { cfg with Air.System.causal = Some (Air_obs.Causal.create ()) }
    else cfg
  in
  let instrument =
    if trace_json <> None || flows then Some instrument else None
  in
  match Air_config.Loader.load_cluster_file ?instrument path with
  | Error e ->
    Format.eprintf "%s: %s@." path e;
    1
  | Ok cluster ->
    Air.Cluster.run cluster ~ticks;
    let stats = Air.Cluster.stats cluster in
    Format.printf
      "cluster ran %d ticks: %d messages transferred, %d dropped, %d in \
       flight@."
      ticks stats.Air.Cluster.transferred stats.Air.Cluster.dropped
      stats.Air.Cluster.in_flight;
    let systems = Air.Cluster.systems cluster in
    Array.iteri
      (fun i system ->
        Format.printf "module %d: %d deadline violations%s@." i
          (List.length (Air.System.violations system))
          (match Air.System.halted system with
          | Some reason -> Printf.sprintf " (HALTED: %s)" reason
          | None -> ""))
      systems;
    if flows then begin
      Format.printf "@.cross-module flows:@.";
      print_string
        (Air_vitral.Flows.render
           ~port_name:(port_name_of systems)
           (Air.Cluster.flow_entries cluster))
    end;
    let chrome_ok =
      match trace_json with
      | None -> true
      | Some file -> (
        try
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (Air.Cluster.chrome_trace cluster);
              Out_channel.output_char oc '\n');
          Format.printf "cluster chrome trace exported to %s@." file;
          true
        with Sys_error msg ->
          Format.eprintf "%s@." msg;
          false)
    in
    if chrome_ok then 0 else 1

(* Fleet mode: an (air-fleet …) document stamps a constellation out of a
   template and runs it through the parallel discrete-event engine —
   bit-identical to the sequential cluster run for any --domains. *)
let run_fleet path ticks domains trace_json flows speed =
  let instrument _ (cfg : Air.System.config) =
    let cfg =
      if cfg.Air.System.recorder = None then
        { cfg with Air.System.recorder = Some (Air_obs.Span.create ()) }
      else cfg
    in
    if cfg.Air.System.causal = None then
      { cfg with Air.System.causal = Some (Air_obs.Causal.create ()) }
    else cfg
  in
  let instrument =
    if trace_json <> None || flows then Some instrument else None
  in
  match Air_config.Loader.load_fleet_file ?instrument path with
  | Error e ->
    Format.eprintf "%s: %s@." path e;
    1
  | Ok { Air_config.Loader.fleet_cluster = cluster; fleet_domains } ->
    let domains = Option.value domains ~default:fleet_domains in
    let fleet = Air_fleet.Fleet.create ~domains cluster in
    let wall_start = Unix.gettimeofday () in
    Air_fleet.Fleet.run fleet ~ticks;
    let wall = Unix.gettimeofday () -. wall_start in
    Air_fleet.Fleet.close fleet;
    let stats = Air.Cluster.stats cluster in
    Format.printf
      "fleet ran %d ticks on %d domain%s: %d messages transferred, %d \
       dropped, %d in flight@."
      ticks domains
      (if domains = 1 then "" else "s")
      stats.Air.Cluster.transferred stats.Air.Cluster.dropped
      stats.Air.Cluster.in_flight;
    let systems = Air.Cluster.systems cluster in
    Array.iteri
      (fun i system ->
        let violations = List.length (Air.System.violations system) in
        if violations > 0 || Air.System.halted system <> None then
          Format.printf "module %d: %d deadline violations%s@." i violations
            (match Air.System.halted system with
            | Some reason -> Printf.sprintf " (HALTED: %s)" reason
            | None -> ""))
      systems;
    print_string (Air_obs.Fleet_stats.to_text (Air_fleet.Fleet.stats fleet));
    Format.printf "fingerprint: %s@." (Air_fleet.Fleet.fingerprint cluster);
    if speed then
      Format.eprintf "speed: %d simulated ticks in %.3f s wall (%.0f ticks/s)@."
        ticks wall
        (float_of_int ticks /. Float.max wall 1e-9);
    if flows then begin
      Format.printf "@.cross-module flows:@.";
      print_string
        (Air_vitral.Flows.render
           ~port_name:(port_name_of systems)
           (Air.Cluster.flow_entries cluster))
    end;
    let chrome_ok =
      match trace_json with
      | None -> true
      | Some file -> (
        try
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (Air.Cluster.chrome_trace cluster);
              Out_channel.output_char oc '\n');
          Format.printf "fleet chrome trace exported to %s@." file;
          true
        with Sys_error msg ->
          Format.eprintf "%s@." msg;
          false)
    in
    if chrome_ok then 0 else 1

(* Campaign mode: run every (faults (campaign …)) of the document through
   the injection engine, judge containment, and print/export the reports.
   Each engine run gets a fresh system built by reloading the document, so
   campaign, baseline and reproducibility runs share no mutable state. *)
let run_campaigns path campaign_json ~turbo ~cores =
  match Air_config.Loader.load_campaigns_file path with
  | Error e ->
    Format.eprintf "%s: %s@." path e;
    1
  | Ok [] ->
    Format.eprintf "%s: no (faults (campaign …)) section@." path;
    1
  | Ok specs -> (
    let make () =
      match Air_config.Loader.load_file path with
      | Ok cfg ->
        let cfg =
          match cores with
          | Some n -> { cfg with Air.System.cores = Some n }
          | None -> cfg
        in
        Air_faults.Engine.Module (Air.System.create cfg)
      | Error e -> failwith e
    in
    match
      List.map
        (fun spec ->
          let run = Air_faults.Engine.execute ~turbo ~make spec in
          let verdict = Air_faults.Oracle.check run in
          let reproducible =
            Air_faults.Engine.reproducible ~turbo ~make spec
          in
          Air_faults.Report.make ~reproducible run verdict)
        specs
    with
    | exception Failure e ->
      Format.eprintf "%s: %s@." path e;
      1
    | reports ->
      List.iter (fun r -> print_string (Air_faults.Report.to_text r)) reports;
      let json_ok =
        match campaign_json with
        | None -> true
        | Some file -> (
          try
            Out_channel.with_open_text file (fun oc ->
                Out_channel.output_string oc
                  (Air_faults.Report.document reports);
                Out_channel.output_char oc '\n');
            Format.printf "campaign report exported to %s@." file;
            true
          with Sys_error msg ->
            Format.eprintf "%s@." msg;
            false)
      in
      let contained =
        List.for_all
          (fun r -> Air_faults.Oracle.passed r.Air_faults.Report.verdict)
          reports
      and deterministic =
        List.for_all
          (fun r -> r.Air_faults.Report.reproducible = Some true)
          reports
      in
      if not json_ok then 1 else if contained && deterministic then 0 else 2)

let document_tag path =
  match Air_config.Sexp.parse_file path with
  | Ok (Air_config.Sexp.List (Air_config.Sexp.Atom tag :: _) :: _) -> Some tag
  | Ok _ | Error _ -> None

let is_cluster_document path = document_tag path = Some "air-cluster"
let is_fleet_document path = document_tag path = Some "air-fleet"

let run_file path ticks show_trace show_gantt export metrics_json trace_json
    check_trace timeline telemetry_csv telemetry_json watch faults
    campaign_json cores no_skip speed profile profile_json flows fleet domains
    =
  let turbo = not no_skip in
  if (fleet || domains <> None) && not (is_fleet_document path) then begin
    Format.eprintf "%s: --fleet/--domains need an (air-fleet …) document@."
      path;
    1
  end
  else if faults || campaign_json <> None then
    if is_cluster_document path || is_fleet_document path then begin
      Format.eprintf "%s: --faults runs against a module document@." path;
      1
    end
    else run_campaigns path campaign_json ~turbo ~cores
  else if is_fleet_document path then
    run_fleet path ticks domains trace_json flows speed
  else if is_cluster_document path then run_cluster path ticks trace_json flows
  else
  match Air_config.Loader.load_file path with
  | Error e ->
    Format.eprintf "%s: %s@." path e;
    1
  | Ok cfg ->
    (* The flight recorder is only attached when some output needs it. *)
    let cfg =
      if (trace_json <> None || timeline) && cfg.Air.System.recorder = None
      then
        { cfg with Air.System.recorder = Some (Air_obs.Span.create ()) }
      else cfg
    in
    (* Likewise telemetry: any downlink flag attaches a default frame
       accumulator unless the document configured one itself. *)
    let wants_telemetry =
      telemetry_csv <> None || telemetry_json <> None || watch <> None
    in
    let cfg =
      if wants_telemetry && cfg.Air.System.telemetry = None then
        { cfg with
          Air.System.telemetry = Some Air_obs.Telemetry.default_config }
      else cfg
    in
    (* --cores overrides the document's (cores N), if any. *)
    let cfg =
      match cores with
      | Some n -> { cfg with Air.System.cores = Some n }
      | None -> cfg
    in
    (* --flows needs the causal tracker stamping IPC messages. *)
    let cfg =
      if flows && cfg.Air.System.causal = None then
        { cfg with Air.System.causal = Some (Air_obs.Causal.create ()) }
      else cfg
    in
    let system = Air.System.create cfg in
    let partition_names =
      List.filter (fun (i, _) -> i >= 0) (Air.System.track_names system)
    in
    let schedule_names =
      List.mapi (fun i s -> (i, s.Schedule.name)) cfg.Air.System.schedules
    in
    (* With a contention model, the dashboard grows a derived throttle
       column: the share of the partition's held ticks served as
       interference stall in its latest frame. *)
    let derived =
      match Air.System.contention system with
      | None -> []
      | Some _ ->
        [ ( "thr%",
            fun (pf : Air_obs.Telemetry.partition_frame) ->
              if pf.Air_obs.Telemetry.pf_window_ticks <= 0 then "-"
              else
                Printf.sprintf "%d%%"
                  (pf.Air_obs.Telemetry.pf_throttled * 100
                  / pf.Air_obs.Telemetry.pf_window_ticks) ) ]
    in
    let print_dashboard () =
      print_string
        (Air_vitral.Dashboard.render ~schedules:schedule_names ~derived
           ~partitions:partition_names
           (Air.System.telemetry_frames system))
    in
    (* The executive: skip-ahead by default, per-tick under --no-skip;
       either way the observable run is identical. *)
    let profiler =
      if profile || profile_json <> None then
        Some (Air_exec.Profiler.create ())
      else None
    in
    let engine =
      Air_exec.Engine.create ?profiler ~skip_ahead:turbo system
    in
    let wall_start = Unix.gettimeofday () in
    (match watch with
    | None -> Air_exec.Engine.advance engine ~ticks
    | Some every ->
      let every = max 1 every in
      (* Watch mode advances whole MTFs so every dashboard refresh lines
         up with a frame boundary; the run therefore covers at least
         [ticks] ticks, rounded up to the boundary. *)
      while Air.System.now system + 1 < ticks do
        Air_exec.Engine.run_mtfs engine every;
        print_dashboard ()
      done);
    let wall = Unix.gettimeofday () -. wall_start in
    let ticks =
      if watch = None then ticks else Air.System.now system + 1
    in
    if speed then begin
      let simulated = Air_exec.Engine.simulated engine in
      let stats = Air_exec.Engine.stats engine in
      Format.eprintf
        "speed: %d simulated ticks in %.3f s wall (%.0f ticks/s; %d \
         stepped, %d skipped)@."
        simulated wall
        (float_of_int simulated /. Float.max wall 1e-9)
        stats.Air_exec.Engine.stepped stats.Air_exec.Engine.skipped
    end;
    let trace = Air.System.trace system in
    Format.printf "ran %d ticks%s@." ticks
      (match Air.System.halted system with
      | Some reason -> Printf.sprintf " (HALTED: %s)" reason
      | None -> "");
    let violations = Air.System.violations system in
    Format.printf "deadline violations: %d@." (List.length violations);
    List.iter
      (fun (t, p, d) ->
        Format.printf "  [%d] %a missed deadline %d@." t Ident.Process_id.pp p
          d)
      violations;
    let hm_errors =
      Air_sim.Trace.filter (fun _ -> Event.is_hm_error) trace
    in
    Format.printf "health-monitor errors: %d@." (List.length hm_errors);
    List.iter
      (fun (t, ev) -> Format.printf "  [%d] %a@." t Event.pp ev)
      hm_errors;
    Air_sim.Trace.iter
      (fun t ev ->
        if Event.is_schedule_switch ev then
          Format.printf "  [%d] %a@." t Event.pp ev)
      trace;
    let partitions = Air.System.partition_ids system in
    Format.printf "processor occupation (whole run):@.";
    List.iter
      (fun (owner, n) ->
        Format.printf "  %-8s %8d ticks (%.1f%%)@."
          (match owner with
          | None -> "idle"
          | Some p -> Format.asprintf "%a" Ident.Partition_id.pp p)
          n
          (float_of_int n /. float_of_int ticks *. 100.0))
      (Air_vitral.Gantt.occupancy ~partitions ~from:0 ~until:ticks
         (Air.System.activity system));
    if show_gantt then begin
      let upto = min ticks 2000 in
      print_string
        (Air_vitral.Gantt.of_activity ~partitions ~from:0 ~until:upto
           (Air.System.activity system))
    end;
    Format.printf "@.%s" (Air.System.metrics_report system);
    let metrics_ok =
      match metrics_json with
      | None -> true
      | Some file -> (
        try
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (Air.System.metrics_json system);
              Out_channel.output_char oc '\n');
          Format.printf "metrics exported to %s@." file;
          true
        with Sys_error msg ->
          Format.eprintf "%s@." msg;
          false)
    in
    if show_trace then begin
      Format.printf "@.trace tail:@.";
      let events = Air_sim.Trace.to_list trace in
      let n = List.length events in
      List.iteri
        (fun i (t, ev) ->
          if i >= n - 30 then Format.printf "  [%d] %a@." t Event.pp ev)
        events
    end;
    let trace_ok =
      match export with
      | None -> true
      | Some file -> (
        try
          export_trace trace file;
          Format.printf "trace exported to %s (%d events)@." file
            (Air_sim.Trace.length trace);
          true
        with Sys_error msg ->
          Format.eprintf "%s@." msg;
          false)
    in
    if timeline then begin
      Format.printf "@.flight recorder timeline:@.";
      let opens =
        match Air.System.recorder system with
        | None -> []
        | Some r -> Air_obs.Span.open_spans r ~now:(Air.System.now system)
      in
      print_string
        (Air_vitral.Timeline.render
           ~tracks:(Air.System.track_names system)
           ~lanes:(Option.value ~default:1 cfg.Air.System.cores)
           (Air.System.spans system @ opens))
    end;
    if flows then begin
      Format.printf "@.message flows:@.";
      print_string
        (Air_vitral.Flows.render
           ~port_name:(fun ~module_id:_ ~port ->
             List.assoc_opt port
               (Air_ipc.Router.port_names (Air.System.router system)))
           (Air.System.flow_entries system))
    end;
    if profile then begin
      Format.printf "@.";
      match Air_exec.Engine.profiler engine with
      | Some p -> print_string (Air_exec.Profiler.to_text p)
      | None -> ()
    end;
    let profile_ok =
      match (profile_json, Air_exec.Engine.profiler engine) with
      | None, _ | _, None -> true
      | Some file, Some p -> (
        try
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (Air_exec.Profiler.to_json p);
              Out_channel.output_char oc '\n');
          Format.printf "engine profile exported to %s@." file;
          true
        with Sys_error msg ->
          Format.eprintf "%s@." msg;
          false)
    in
    let chrome_ok =
      match trace_json with
      | None -> true
      | Some file -> (
        try
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (Air.System.chrome_trace system);
              Out_channel.output_char oc '\n');
          Format.printf "chrome trace exported to %s@." file;
          true
        with Sys_error msg ->
          Format.eprintf "%s@." msg;
          false)
    in
    let telemetry_ok =
      if not wants_telemetry then true
      else begin
        (* Close the trailing partial frame so the exports cover the whole
           run even when it does not end on an MTF boundary. *)
        (match Air.System.telemetry_flush system with
        | Some _ when watch <> None -> print_dashboard ()
        | Some _ | None -> ());
        let frames = Air.System.telemetry_frames system in
        let write file contents what =
          try
            Out_channel.with_open_text file (fun oc ->
                Out_channel.output_string oc contents;
                if
                  String.length contents = 0
                  || contents.[String.length contents - 1] <> '\n'
                then Out_channel.output_char oc '\n');
            Format.printf "%s exported to %s (%d frames)@." what file
              (List.length frames);
            true
          with Sys_error msg ->
            Format.eprintf "%s@." msg;
            false
        in
        let json_ok =
          match telemetry_json with
          | None -> true
          | Some file ->
            write file (Air_obs.Telemetry.to_json frames) "telemetry JSON"
        in
        let csv_ok =
          match telemetry_csv with
          | None -> true
          | Some file ->
            write file (Air_obs.Telemetry.to_csv frames) "telemetry CSV"
        in
        json_ok && csv_ok
      end
    in
    let check_ok =
      if not check_trace then true
      else begin
        if Air_sim.Trace.total trace > Air_sim.Trace.length trace then
          Format.eprintf
            "warning: bounded trace dropped %d events; replay check needs \
             the full trace from tick 0@."
            (Air_sim.Trace.total trace - Air_sim.Trace.length trace);
        let violations =
          Air_analysis.Trace_check.check
            ?initial_schedule:cfg.Air.System.initial_schedule
            ~network:cfg.Air.System.network
            ~until:(Air.System.now system + 1)
            ~schedules:cfg.Air.System.schedules
            (Air_sim.Trace.to_list trace)
        in
        Format.printf "trace check: %d violation%s@."
          (List.length violations)
          (if List.length violations = 1 then "" else "s");
        List.iter
          (fun v ->
            Format.printf "  %a@." Air_analysis.Trace_check.pp_violation v)
          violations;
        violations = []
      end
    in
    if
      not
        (metrics_ok && trace_ok && chrome_ok && telemetry_ok && check_ok
        && profile_ok)
    then 1
    else if Air.System.halted system = None then 0
    else 2

let path_arg =
  let doc = "Configuration document (.air) to run." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG" ~doc)

let ticks_arg =
  let doc = "Number of system clock ticks to simulate." in
  Arg.(value & opt int 10_000 & info [ "t"; "ticks" ] ~doc)

let trace_flag =
  let doc = "Print the last 30 trace events." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let gantt_flag =
  let doc = "Print a Gantt chart of the first 2000 ticks." in
  Arg.(value & flag & info [ "g"; "gantt" ] ~doc)

let export_arg =
  let doc = "Write the full event trace (tab-separated) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "export" ] ~docv:"FILE" ~doc)

let metrics_json_arg =
  let doc = "Write the end-of-run metrics snapshot as JSON to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let trace_json_arg =
  let doc =
    "Record the run with the flight recorder and write it as Chrome \
     trace-event JSON to $(docv) (loadable in chrome://tracing or Perfetto)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let check_trace_arg =
  let doc =
    "Replay the event trace against the configured schedules and report \
     temporal-invariant violations (nonzero exit when any is found)."
  in
  Arg.(value & flag & info [ "check-trace" ] ~doc)

let timeline_flag =
  let doc = "Print the flight-recorder spans as a text timeline." in
  Arg.(value & flag & info [ "timeline" ] ~doc)

let telemetry_csv_arg =
  let doc =
    "Write the per-MTF telemetry frames as CSV (one row per frame and \
     partition) to $(docv)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-csv" ] ~docv:"FILE" ~doc)

let telemetry_json_arg =
  let doc = "Write the per-MTF telemetry frames as JSON to $(docv)." in
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-json" ] ~docv:"FILE" ~doc)

let watch_arg =
  let doc =
    "Run in whole major time frames and print the telemetry dashboard \
     every $(docv) MTFs (the run is rounded up to an MTF boundary)."
  in
  Arg.(value & opt (some int) None & info [ "watch" ] ~docv:"N" ~doc)

let faults_flag =
  let doc =
    "Run the document's (faults …) campaigns through the injection engine \
     instead of a plain simulation: each campaign is executed over its own \
     horizon, checked for reproducibility, and judged by the containment \
     oracle (exit 2 when a campaign breaches containment or diverges)."
  in
  Arg.(value & flag & info [ "faults" ] ~doc)

let campaign_json_arg =
  let doc =
    "Write the campaign reports as an air-campaign/1 JSON document to \
     $(docv) (implies $(b,--faults))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "campaign-json" ] ~docv:"FILE" ~doc)

let cores_arg =
  let doc =
    "Shard every schedule over $(docv) processor cores and drive one PMK \
     lane per core off the global clock (overrides the document's (cores \
     N), if any). Window offsets are preserved, so the run is \
     time-faithful to the single-core one; mode-based schedule switches \
     are broadcast to every lane."
  in
  Arg.(value & opt (some int) None & info [ "cores" ] ~docv:"N" ~doc)

let no_skip_flag =
  let doc =
    "Force per-tick execution. By default the executive runs in turbo: it \
     computes the next interesting tick (window edge, MTF boundary, \
     pending wake or PAL deadline, fault injection) and advances \
     provably-quiet spans in O(1) — observationally identical, just \
     faster on sparse workloads."
  in
  Arg.(value & flag & info [ "no-skip" ] ~doc)

let profile_flag =
  let doc =
    "Profile the skip-ahead executive: attribute wall clock and ticks to \
     per-tick steps, blind batches, skipped spans and probes \
     (successful/wasted), and print the bucket report after the run. The \
     run itself is bit-identical to an unprofiled one."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let profile_json_arg =
  let doc =
    "Write the engine profile as an air-profile/1 JSON document to $(docv) \
     (implies profiling the run)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-json" ] ~docv:"FILE" ~doc)

let flows_flag =
  let doc =
    "Stamp every IPC message with a causal correlation id and print the \
     per-flow table after the run: messages sent/delivered/forwarded/\
     perturbed per origin port, with end-to-end latency percentiles. On a \
     cluster document every module is instrumented and cross-module flows \
     include bus time."
  in
  Arg.(value & flag & info [ "flows" ] ~doc)

let speed_flag =
  let doc =
    "Print a speed summary to stderr after the run: simulated ticks, wall \
     seconds, ticks per second, and the stepped/skipped split of the \
     skip-ahead executive (module runs only)."
  in
  Arg.(value & flag & info [ "speed" ] ~doc)

let fleet_flag =
  let doc =
    "Require the document to be an (air-fleet …) constellation and run it \
     through the parallel fleet engine (fleet documents are detected \
     automatically; this flag makes the intent explicit and errors on any \
     other document kind)."
  in
  Arg.(value & flag & info [ "fleet" ] ~doc)

let domains_arg =
  let doc =
    "Advance the constellation on $(docv) OCaml domains (overrides the \
     document's (domains N)). Whatever the count, traces, telemetry, \
     counters and the printed fingerprint are bit-identical to the \
     sequential run: shards only advance inside the conservative lookahead \
     window granted by the minimum link latency, and cross-shard messages \
     are replayed in the sequential drain order at every window barrier."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let cmd =
  let doc = "run an AIR module from its integration configuration" in
  Cmd.v
    (Cmd.info "air_run" ~doc)
    Term.(const run_file $ path_arg $ ticks_arg $ trace_flag $ gantt_flag
          $ export_arg $ metrics_json_arg $ trace_json_arg $ check_trace_arg
          $ timeline_flag $ telemetry_csv_arg $ telemetry_json_arg
          $ watch_arg $ faults_flag $ campaign_json_arg $ cores_arg
          $ no_skip_flag $ speed_flag $ profile_flag $ profile_json_arg
          $ flows_flag $ fleet_flag $ domains_arg)

let () = exit (Cmd.eval' cmd)
